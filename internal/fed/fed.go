// Package fed is the two-level federation layer: a router (the heart of
// cmd/gvmfed) that fronts N gvmd nodes over the existing transports and
// speaks the same six-verb protocol to clients, so a worker pointed at
// gvmfed cannot tell it from a single gvmd.
//
// Placement is hierarchical: the router turns each backend node's
// polled capacity/health advertisement (the STA verb / addr-file v2
// schema) into one node-level Load and runs the SAME node.Placer +
// node.Policy machinery the daemon itself uses for shards — the router
// picks the node, the node's own policy picks the GPU. Every session
// gets its own sticky backend connection: REQ opens it, later verbs are
// proxied over it with the pooled zero-copy framing (the warm proxy hop
// allocates nothing), and STR barriers on one session can never block
// another session's traffic.
//
// Failover extends PR9's live migration across nodes. When a backend
// drains (SIGUSR1 → whole node) the router extracts each session via
// MIG on its sticky connection, re-places it through the node-level
// policy, and adopts it on the survivor with ADP — same virtual session
// id, so the client never notices. When a backend dies outright the
// state is gone; the router answers the in-flight verbs with retryable
// errors, re-creates the session from its recorded REQ parameters on a
// surviving node, and the client's jittered retry loop replays the
// cycle (pipelined clients re-stage input in the same BAT; the cycle is
// deterministic, so the replay is byte-identical).
package fed

import (
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// Config configures a Router.
type Config struct {
	// Backends are the gvmd nodes to front, in URL form (tcp://host:port,
	// unix:///path, inproc://name). At least one.
	Backends []string
	// Placement names the NODE-level policy (same registry as gvmd
	// -placement: least-sessions, round-robin, least-memory,
	// weighted-bytes, slo). Default least-sessions.
	Placement string
	// PollInterval is the advertisement poll period (default 200ms).
	PollInterval time.Duration
	// Metrics receives the fed_* series. nil creates a private registry.
	Metrics *metrics.Registry
	// Log, when non-nil, receives routing and failover events.
	Log *slog.Logger
}

// nodeState is one backend's position in the router's state machine.
// States only escalate: a drained node is being evacuated, a dead one
// is unreachable. (A restarted backend is a new, empty daemon — the
// router's session state for it is gone either way.)
type nodeState int32

const (
	stateAlive nodeState = iota
	stateDraining
	stateDead
)

func (s nodeState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateDraining:
		return "draining"
	default:
		return "dead"
	}
}

// backend is one fronted gvmd node.
type backend struct {
	idx  int
	addr string

	// sessions is the fed_placed_sessions{node} gauge — the router's own
	// count of sessions currently routed to this backend (fresher than
	// the polled advertisement).
	sessions *metrics.Gauge
	// bytes is the staging footprint the router has placed here.
	bytes atomic.Int64

	mu    sync.Mutex
	state nodeState
	// ad is the last polled advertisement folded into a node-level Load
	// (zero until the first successful poll).
	ad node.Load
	// bytesAtPoll/sessionsAtPoll snapshot the router's own counters at
	// the moment ad was taken, so load() can correct the advertisement
	// by the DELTA placed since the poll. Correcting by the absolute
	// counters would assume every session on the backend is ours —
	// wrong the moment the node also serves direct clients or a second
	// router, whose bytes would then inflate the computed headroom past
	// the advertisement.
	bytesAtPoll    int64
	sessionsAtPoll int64
	// ctl is the polling connection (lazily dialed, redialed on error).
	ctl   *transport.Conn
	ctlNC net.Conn
}

func (b *backend) getState() nodeState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// load folds the backend's last advertisement and the router's own
// placement counters into one node-level Load for the Placer. The
// router's counters correct the advertisement's staleness: sessions
// placed (or released) THROUGH THIS ROUTER since the last poll move
// the headroom before the next poll confirms it. Only the delta since
// the poll is applied — the advertisement already accounts for
// everything on the node at poll time, including sessions the router
// never placed.
func (b *backend) load() node.Load {
	b.mu.Lock()
	l := b.ad
	st := b.state
	bytesAtPoll, sessionsAtPoll := b.bytesAtPoll, b.sessionsAtPoll
	b.mu.Unlock()
	l.Shard = b.idx
	bytesDelta := b.bytes.Load() - bytesAtPoll
	l.MemFree -= bytesDelta
	if l.MemFree < 0 {
		l.MemFree = 0
	}
	l.Bytes += bytesDelta
	if l.Bytes < 0 {
		l.Bytes = 0
	}
	l.Sessions += b.sessions.Value() - sessionsAtPoll
	if l.Sessions < 0 {
		l.Sessions = 0
	}
	switch st {
	case stateDraining:
		if l.Health < node.Draining {
			l.Health = node.Draining
		}
	case stateDead:
		l.Health = node.Unhealthy
	}
	return l
}

// fedSession is the router-side state of one client session: the
// virtual id the client sees, the backend currently hosting it, and the
// session's sticky backend connection. mu serializes everything that
// touches the session — verb forwarding, migration, re-creation — so a
// verb never races the session between nodes.
type fedSession struct {
	vid   int
	owner *clientConn

	mu     sync.Mutex
	b      *backend
	realID int
	conn   *transport.Conn
	nc     net.Conn
	// placed reports whether the session currently holds a reservation in
	// b's counters (false between losing a backend and landing on the
	// next one).
	placed bool
	closed bool

	// REQ parameters, kept for dead-backend re-creation.
	ref      workloads.Ref
	rank     int
	memQuota int64
	priority int
	weight   int
	inB      int64
	outB     int64

	// staged reports whether the CURRENT backend incarnation of the
	// session holds the client's staging intact. True from REQ — a fresh
	// session legitimately computes on zero-filled staging, exactly like
	// a direct gvmd — and refreshed by SND. Only a dead-node re-creation
	// clears it: results and staged input died with the node, so verbs
	// that need input answer retryable errors until the client re-stages
	// (a pipelined client's replayed BAT leads with SND and sails
	// through).
	staged bool
}

// clientConn identifies one accepted client connection; sessions are
// owned by the connection that opened them, like the daemon's ConnState.
type clientConn struct {
	conn  *transport.Conn
	owned []int
}

func (cc *clientConn) dropOwned(vid int) {
	for i, o := range cc.owned {
		if o == vid {
			cc.owned = append(cc.owned[:i], cc.owned[i+1:]...)
			return
		}
	}
}

// fedMetrics are the router's registry-backed instruments, built once.
type fedMetrics struct {
	proxyLat      map[string]*metrics.Histogram // fed_proxy_latency_ns{verb}
	otherLat      *metrics.Histogram
	failovers     *metrics.Counter
	migratedBytes *metrics.Counter
}

func (fm *fedMetrics) lat(verb string) *metrics.Histogram {
	if h := fm.proxyLat[verb]; h != nil {
		return h
	}
	return fm.otherLat
}

// Router is the federation front: it accepts client connections, places
// REQs across backends, and proxies session verbs over sticky backend
// connections.
type Router struct {
	cfg    Config
	placer *node.Placer
	reg    *metrics.Registry
	met    *fedMetrics

	backends []*backend

	// placeMu makes select-and-reserve atomic across concurrent REQs.
	placeMu sync.Mutex

	mu       sync.Mutex
	sessions map[int]*fedSession
	nextVID  int
	closed   bool

	lns  []transport.Listener
	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a router fronting cfg.Backends. Call Start to bind
// listeners and begin polling.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fed: no backends configured")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	placer, err := node.NewPlacer(cfg.Placement, "node")
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Router{
		cfg:      cfg,
		placer:   placer,
		reg:      reg,
		sessions: make(map[int]*fedSession),
		quit:     make(chan struct{}),
	}
	r.met = &fedMetrics{
		proxyLat: make(map[string]*metrics.Histogram),
		failovers: reg.Counter("fed_failovers_total",
			"sessions moved off draining or dead backend nodes (migrations plus re-creations)"),
		migratedBytes: reg.Counter("fed_migrated_bytes_total",
			"bytes moved by cross-node session migration (MIG blobs)"),
	}
	for _, v := range []string{"REQ", "BAT", "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES"} {
		r.met.proxyLat[v] = reg.Histogram("fed_proxy_latency_ns",
			"wall-clock backend round-trip time through the proxy", metrics.L("verb", v))
	}
	r.met.otherLat = reg.Histogram("fed_proxy_latency_ns",
		"wall-clock backend round-trip time through the proxy", metrics.L("verb", "other"))
	for i, addr := range cfg.Backends {
		b := &backend{
			idx:  i,
			addr: addr,
			sessions: reg.Gauge("fed_placed_sessions",
				"sessions the router has placed on the backend node", metrics.L("node", strconv.Itoa(i))),
		}
		r.backends = append(r.backends, b)
	}
	for _, st := range []nodeState{stateAlive, stateDraining, stateDead} {
		st := st
		reg.GaugeFunc("fed_nodes", "backend nodes by state", func() int64 {
			var n int64
			for _, b := range r.backends {
				if b.getState() == st {
					n++
				}
			}
			return n
		}, metrics.L("state", st.String()))
	}
	return r, nil
}

// Metrics returns the registry holding the fed_* series.
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Placement returns the node-level policy name.
func (r *Router) Placement() string { return r.placer.Policy() }

// Start polls every backend once (so placement has capacity data before
// the first REQ), binds the listen addresses, and begins serving.
func (r *Router) Start(listen []string) error {
	if len(listen) == 0 {
		return fmt.Errorf("fed: no listen addresses")
	}
	for _, b := range r.backends {
		r.pollBackend(b)
	}
	for _, addr := range listen {
		ln, err := transport.ListenAddr(addr)
		if err != nil {
			for _, l := range r.lns {
				l.Close()
			}
			return fmt.Errorf("fed: listen %s: %w", addr, err)
		}
		r.lns = append(r.lns, ln)
	}
	for _, ln := range r.lns {
		ln := ln
		r.wg.Add(1)
		go r.accept(ln)
	}
	r.wg.Add(1)
	go r.pollLoop()
	return nil
}

// Addr returns the first bound listener address in URL form.
func (r *Router) Addr() string { return r.lns[0].Addr() }

// Addrs returns every bound listener address in URL form.
func (r *Router) Addrs() []string {
	addrs := make([]string, len(r.lns))
	for i, ln := range r.lns {
		addrs[i] = ln.Addr()
	}
	return addrs
}

// Close shuts the router down: listeners close, every session's sticky
// backend connection drops (the backend daemons release the sessions on
// hang-up, exactly as if the clients had disconnected).
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	live := make([]*fedSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()
	close(r.quit)
	var err error
	for _, ln := range r.lns {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	for _, s := range live {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			if s.nc != nil {
				_ = s.nc.Close()
			}
		}
		s.mu.Unlock()
	}
	for _, b := range r.backends {
		b.mu.Lock()
		if b.ctlNC != nil {
			_ = b.ctlNC.Close()
			b.ctl, b.ctlNC = nil, nil
		}
		b.mu.Unlock()
	}
	r.wg.Wait()
	return err
}

// nodeLoads snapshots every backend's node-level Load in index order.
func (r *Router) nodeLoads() []node.Load {
	loads := make([]node.Load, len(r.backends))
	for i, b := range r.backends {
		loads[i] = b.load()
	}
	return loads
}

// dialBackend opens one binary-codec connection to a backend.
func (r *Router) dialBackend(b *backend) (*transport.Conn, net.Conn, error) {
	nc, _, err := transport.DialAddr(b.addr)
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WritePreamble(nc, false); err != nil {
		nc.Close()
		return nil, nil, err
	}
	return transport.NewConn(nc), nc, nil
}

// markDead escalates a backend to dead (idempotent). Sessions routed to
// it are re-created lazily on their next verb; in-flight verbs answer
// retryable errors the clients replay.
func (r *Router) markDead(b *backend, cause error) {
	b.mu.Lock()
	was := b.state
	b.state = stateDead
	if b.ctlNC != nil {
		_ = b.ctlNC.Close()
		b.ctl, b.ctlNC = nil, nil
	}
	b.mu.Unlock()
	if was != stateDead && r.cfg.Log != nil {
		r.cfg.Log.Warn("backend node dead", "node", b.idx, "addr", b.addr, "cause", cause)
	}
}

// register publishes a new session under a fresh virtual id.
func (r *Router) register(s *fedSession) int {
	r.mu.Lock()
	r.nextVID++
	s.vid = r.nextVID
	r.sessions[s.vid] = s
	r.mu.Unlock()
	return s.vid
}

// lookup resolves a virtual session id for a client connection, with
// the same ownership rule as the daemon.
func (r *Router) lookup(vid int, cc *clientConn) (*fedSession, error) {
	r.mu.Lock()
	s := r.sessions[vid]
	r.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("fed: unknown session %d", vid)
	}
	if s.owner != cc {
		return nil, fmt.Errorf("fed: session %d belongs to another connection", vid)
	}
	return s, nil
}

// place picks a backend for a footprint and reserves it in the
// backend's counters immediately — concurrent placements must see each
// other before any backend round trip completes, exactly like
// node.Place one level down. Callers release a reservation they cannot
// use with unplace.
func (r *Router) place(footprint int64) (*backend, error) {
	r.placeMu.Lock()
	defer r.placeMu.Unlock()
	idx, err := r.placer.Select(r.nodeLoads(), footprint)
	if err != nil {
		return nil, err
	}
	b := r.backends[idx]
	b.sessions.Inc()
	b.bytes.Add(footprint)
	return b, nil
}

// unplace returns a reservation taken by place.
func (r *Router) unplace(b *backend, footprint int64) {
	b.sessions.Dec()
	b.bytes.Add(-footprint)
}

// attachLocked binds a session to its (new) backend incarnation; the
// caller already holds the reservation from place. Caller holds s.mu.
func (s *fedSession) attachLocked(b *backend, realID int, conn *transport.Conn, nc net.Conn) {
	s.b, s.realID, s.conn, s.nc = b, realID, conn, nc
	s.placed = true
}

// dropBackendLocked severs a session from its current backend: the
// sticky connection closes and the reservation returns to the backend's
// counters. Idempotent; caller holds s.mu. releaseBuf hands the sticky
// connection's pooled read buffer back — pass false when a just-read
// response's Data is still in flight to the client (it aliases that
// buffer), letting the GC reclaim it instead.
func (r *Router) dropBackendLocked(s *fedSession, releaseBuf bool) {
	if s.nc != nil {
		_ = s.nc.Close()
		if releaseBuf {
			s.conn.Release()
		}
		s.conn, s.nc = nil, nil
	}
	if s.placed {
		s.placed = false
		r.unplace(s.b, s.inB+s.outB)
	}
}

// unregisterLocked removes a released (or lost) session entirely.
// Caller holds s.mu.
func (r *Router) unregisterLocked(s *fedSession, releaseBuf bool) {
	r.mu.Lock()
	delete(r.sessions, s.vid)
	r.mu.Unlock()
	r.dropBackendLocked(s, releaseBuf)
	s.closed = true
}
