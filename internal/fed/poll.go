package fed

import (
	"net"
	"time"

	"gpuvirt/internal/node"
	"gpuvirt/internal/transport"
)

// Advertisement polling: every PollInterval the router sends STA on a
// per-backend control connection and folds the reply into the backend's
// node-level Load. The poll is also the health probe — a node that
// stops answering goes dead, and a node that advertises itself
// unplaceable (whole-node drain, every shard faulted) goes draining and
// gets a background evacuation.

func (r *Router) pollLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			for _, b := range r.backends {
				r.pollBackend(b)
			}
		}
	}
}

// installCtl stores a freshly dialed control connection, unless a verb
// goroutine marked the backend dead since the dial — markDead already
// closed (a nil) b.ctlNC, and dead nodes are never polled again, so an
// installed connection would sit open until Router.Close. Reports
// whether the backend is still worth polling.
func (b *backend) installCtl(ctl *transport.Conn, nc net.Conn) bool {
	b.mu.Lock()
	if b.state == stateDead {
		b.mu.Unlock()
		nc.Close()
		ctl.Release()
		return false
	}
	b.ctl, b.ctlNC = ctl, nc
	b.mu.Unlock()
	return true
}

// pollBackend performs one STA round trip on the backend's control
// connection (dialing or redialing it as needed) and applies the
// advertisement. Dial failure marks the node dead; dead nodes are not
// polled again (their state never de-escalates).
func (r *Router) pollBackend(b *backend) {
	b.mu.Lock()
	if b.state == stateDead {
		b.mu.Unlock()
		return
	}
	ctl, nc := b.ctl, b.ctlNC
	b.mu.Unlock()
	if ctl == nil {
		var err error
		ctl, nc, err = r.dialBackend(b)
		if err != nil {
			r.markDead(b, err)
			return
		}
		if !b.installCtl(ctl, nc) {
			return
		}
	}
	resp, err := tripConn(ctl, transport.Request{Verb: "STA"})
	if err != nil {
		nc.Close()
		ctl.Release()
		b.mu.Lock()
		b.ctl, b.ctlNC = nil, nil
		b.mu.Unlock()
		// One redial covers a benign dropped control connection; a node
		// that cannot be re-reached is dead.
		ctl2, nc2, derr := r.dialBackend(b)
		if derr != nil {
			r.markDead(b, derr)
			return
		}
		resp, err = tripConn(ctl2, transport.Request{Verb: "STA"})
		if err != nil {
			nc2.Close()
			ctl2.Release()
			r.markDead(b, err)
			return
		}
		if !b.installCtl(ctl2, nc2) {
			return
		}
	}
	if resp.Status != "ACK" {
		// A daemon predating STA answers "unknown verb": leave its load
		// at the zero value (always placeable by headroom 0... no —
		// MemFree 0 keeps it last in line) and its state alive.
		return
	}
	ad, err := node.UnmarshalAd(resp.Data)
	if err != nil {
		if r.cfg.Log != nil {
			r.cfg.Log.Warn("bad advertisement", "node", b.idx, "err", err)
		}
		return
	}
	load := node.NodeLoad(b.idx, ad)
	b.mu.Lock()
	b.ad = load
	// Snapshot the router's own counters alongside the advertisement:
	// load() corrects the ad by the delta placed since this moment.
	b.bytesAtPoll = b.bytes.Load()
	b.sessionsAtPoll = b.sessions.Value()
	drained := b.state == stateAlive && !load.Health.Placeable()
	if drained {
		b.state = stateDraining
	}
	b.mu.Unlock()
	if drained {
		if r.cfg.Log != nil {
			r.cfg.Log.Warn("backend node draining", "node", b.idx, "health", load.Health.String())
		}
		go r.evacuate(b)
	}
}
