package fed

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuvirt/internal/ipc"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// startNode runs one in-process gvmd backend on an inproc transport.
func startNode(t *testing.T, name string, gpus int) *ipc.Server {
	t.Helper()
	s, err := ipc.NewServer(ipc.ServerConfig{
		Listen:     []string{"inproc://" + name},
		Functional: true,
		GPUs:       gpus,
		ShmDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// startRouter runs a gvmfed router fronting the given backends.
func startRouter(t *testing.T, name, policy string, poll time.Duration, nodes ...*ipc.Server) *Router {
	t.Helper()
	backs := make([]string, len(nodes))
	for i, n := range nodes {
		backs[i] = n.Addr()
	}
	r, err := New(Config{Backends: backs, Placement: policy, PollInterval: poll})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start([]string{"inproc://" + name}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// nodeOpenSessions sums live gvm sessions over a backend's shards (the
// counters are atomic-backed, safe off-owner).
func nodeOpenSessions(s *ipc.Server) int {
	open := 0
	for i := 0; i < s.Node().NumShards(); i++ {
		open += s.Node().Shard(i).Mgr.OpenSessions()
	}
	return open
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+(\.\d+)?$`)

// scrape reads a registry through the Prometheus text handler into a
// sample map (integer-valued samples only, which is all the fed_*
// series emit).
func scrape(t *testing.T, reg *metrics.Registry) map[string]int64 {
	t.Helper()
	ts := httptest.NewServer(metrics.Handler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("malformed Prometheus sample line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			continue // histogram quantile with decimals; fed asserts use counters
		}
		out[line[:sp]] = v
	}
	return out
}

// directReference computes each rank's expected output bytes on a
// dedicated single-node daemon with serial verbs — the migration-free,
// federation-free baseline every federated run must match byte for
// byte.
func directReference(t *testing.T, name string, ref workloads.Ref, ranks int) [][]byte {
	t.Helper()
	srv := startNode(t, name, 1)
	c, err := ipc.DialOptions(srv.Addr(), ipc.Options{NoPipeline: true, Plane: transport.PlaneInline})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, ranks)
	for rank := 0; rank < ranks; rank++ {
		sess, err := c.Request(ref, rank)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, sess.InBytes())
		out := make([]byte, sess.OutBytes())
		w.Fill(rank, in)
		if err := sess.RunCycle(in, out); err != nil {
			t.Fatal(err)
		}
		if err := sess.Release(); err != nil {
			t.Fatal(err)
		}
		want[rank] = out
	}
	return want
}

// TestFederationMatrixByteIdentical is the satellite matrix: an inproc
// router fronting 2 nodes under each node-level policy must serve RCV
// bytes identical to a direct single-node serial run — the federation
// hop, the forced inline plane, and the node-level placement must be
// invisible in the data.
func TestFederationMatrixByteIdentical(t *testing.T) {
	const ranks = 4
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 512}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := directReference(t, "fedmatrix-ref", ref, ranks)

	for _, policy := range []string{"least-sessions", "least-memory", "slo"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			a := startNode(t, "fedmatrix-a-"+policy, 2)
			b := startNode(t, "fedmatrix-b-"+policy, 2)
			r := startRouter(t, "fedmatrix-"+policy, policy, 50*time.Millisecond, a, b)

			// Open every session up front so the policy sees the earlier
			// placements, then run the cycles pipelined through the proxy.
			clients := make([]*ipc.Client, ranks)
			sessions := make([]*ipc.Session, ranks)
			for rank := 0; rank < ranks; rank++ {
				c, err := ipc.Dial(r.Addr(), "")
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				clients[rank] = c
				sess, err := c.Request(ref, rank)
				if err != nil {
					t.Fatalf("%s: REQ rank %d: %v", policy, rank, err)
				}
				sessions[rank] = sess
			}
			if policy == "least-sessions" {
				// The canonical spread: 4 held sessions across 2 nodes must
				// go 2/2.
				if ao, bo := nodeOpenSessions(a), nodeOpenSessions(b); ao != 2 || bo != 2 {
					t.Fatalf("least-sessions spread = %d/%d, want 2/2", ao, bo)
				}
			}
			for rank, sess := range sessions {
				in := make([]byte, sess.InBytes())
				out := make([]byte, sess.OutBytes())
				w.Fill(rank, in)
				if err := sess.RunCycle(in, out); err != nil {
					t.Fatalf("%s: rank %d cycle: %v", policy, rank, err)
				}
				if !bytes.Equal(out, want[rank]) {
					t.Fatalf("%s: rank %d output differs from direct single-node reference", policy, rank)
				}
				if err := sess.Release(); err != nil {
					t.Fatal(err)
				}
			}
			if ao, bo := nodeOpenSessions(a), nodeOpenSessions(b); ao != 0 || bo != 0 {
				t.Fatalf("backends hold %d/%d sessions after release, want 0/0", ao, bo)
			}
			samples := scrape(t, r.Metrics())
			if got := samples[`fed_nodes{state="alive"}`]; got != 2 {
				t.Errorf(`fed_nodes{state="alive"} = %d, want 2`, got)
			}
			if got := samples[`fed_proxy_latency_ns_count{verb="REQ"}`]; got != ranks {
				t.Errorf("REQ proxy latency count = %d, want %d", got, ranks)
			}
			if got := samples[`fed_proxy_latency_ns_count{verb="BAT"}`]; got < ranks {
				t.Errorf("BAT proxy latency count = %d, want >= %d", got, ranks)
			}
		})
	}
}

// TestCrossNodeMigrationMidJobByteIdentical drains a whole backend node
// while a session is mid-cycle on it: the router must extract the
// session (MIG), adopt it on the survivor (ADP), and serve the
// remaining STP/RCV from there with bytes identical to an undisturbed
// run — and the source node must end with zero open sessions, zero
// device memory in use and zero reserved bytes.
func TestCrossNodeMigrationMidJobByteIdentical(t *testing.T) {
	const n = 1024
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	want := directReference(t, "fedmig-ref", ref, 1)
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}

	a := startNode(t, "fedmig-a", 1)
	b := startNode(t, "fedmig-b", 1)
	r := startRouter(t, "fedmig", "least-sessions", 20*time.Millisecond, a, b)

	c, err := ipc.DialOptions(r.Addr(), ipc.Options{NoPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, sess.InBytes())
	w.Fill(0, in)
	if err := sess.SendInput(in); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}

	// The session is mid-job on one of the nodes; drain that whole node.
	src, dst := a, b
	if nodeOpenSessions(b) == 1 {
		src, dst = b, a
	}
	if nodeOpenSessions(src) != 1 {
		t.Fatal("no backend owns the session after STR")
	}
	src.DrainAll()

	// The router's next poll sees the node advertise itself unplaceable
	// and evacuates it in the background.
	for deadline := 400; nodeOpenSessions(dst) != 1 || nodeOpenSessions(src) != 0; deadline-- {
		if deadline == 0 {
			t.Fatalf("session never migrated: src %d open, dst %d open",
				nodeOpenSessions(src), nodeOpenSessions(dst))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// STP and RCV are served by the surviving node, byte-identically.
	if err := sess.Wait(); err != nil {
		t.Fatalf("Wait across cross-node migration: %v", err)
	}
	out := make([]byte, sess.OutBytes())
	if err := sess.Receive(out); err != nil {
		t.Fatalf("Receive across cross-node migration: %v", err)
	}
	if !bytes.Equal(out, want[0]) {
		t.Fatal("RCV bytes changed across cross-node migration")
	}

	// The source node is fully empty: session registry, device memory,
	// reservations, and placement counters.
	sh := src.Node().Shard(0)
	if open := sh.Mgr.OpenSessions(); open != 0 {
		t.Errorf("source node still has %d open sessions", open)
	}
	if inUse := sh.Dev.MemInUse(); inUse != 0 {
		t.Errorf("source node still has %d bytes of device memory in use", inUse)
	}
	if reserved := sh.Dev.MemReserved(); reserved != 0 {
		t.Errorf("source node still has %d bytes reserved", reserved)
	}
	for _, l := range src.Node().Loads() {
		if l.Sessions != 0 || l.Bytes != 0 {
			t.Errorf("source gpu %d placement not drained: %d sessions, %d bytes",
				l.Shard, l.Sessions, l.Bytes)
		}
	}

	samples := scrape(t, r.Metrics())
	if got := samples["fed_failovers_total"]; got < 1 {
		t.Errorf("fed_failovers_total = %d, want >= 1", got)
	}
	if got := samples["fed_migrated_bytes_total"]; got <= 0 {
		t.Errorf("fed_migrated_bytes_total = %d, want > 0", got)
	}
	if got := samples[`fed_nodes{state="draining"}`]; got != 1 {
		t.Errorf(`fed_nodes{state="draining"} = %d, want 1`, got)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationChaosKillNodeMidRun is the e2e federation acceptance
// test: 8 pipelined clients run cycles through the router against 2
// nodes x 2 shards while one backend dies outright mid-run. Every
// session on the dead node is re-created on the survivor and its
// replayed cycles produce bytes identical to a single-node serial
// reference — no session lost.
func TestFederationChaosKillNodeMidRun(t *testing.T) {
	const clients, cycles = 8, 3
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := directReference(t, "fedchaos-ref", ref, clients)

	a := startNode(t, "fedchaos-a", 2)
	b := startNode(t, "fedchaos-b", 2)
	r := startRouter(t, "fedchaos", "least-sessions", 20*time.Millisecond, a, b)

	var (
		firstCycle sync.WaitGroup
		barrier    = make(chan struct{})
		wg         sync.WaitGroup
		errs       = make([]error, clients)
	)
	firstCycle.Add(clients)
	for rank := 0; rank < clients; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				c, err := ipc.Dial(r.Addr(), "")
				if err != nil {
					firstCycle.Done()
					return err
				}
				defer c.Close()
				sess, err := c.Request(ref, rank)
				if err != nil {
					firstCycle.Done()
					return err
				}
				in := make([]byte, sess.InBytes())
				out := make([]byte, sess.OutBytes())
				w.Fill(rank, in)
				for i := 0; i < cycles; i++ {
					if err := sess.RunCycle(in, out); err != nil {
						if i == 0 {
							firstCycle.Done()
						}
						return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
					}
					if !bytes.Equal(out, want[rank]) {
						if i == 0 {
							firstCycle.Done()
						}
						return fmt.Errorf("rank %d cycle %d: output differs from serial reference", rank, i)
					}
					if i == 0 {
						firstCycle.Done()
						<-barrier // every rank finishes cycle 0 before the kill
					}
				}
				return sess.Release()
			}()
		}(rank)
	}
	firstCycle.Wait()
	// Hard kill: no drain, no advertisement — the node just dies with 4
	// sessions' state. Clients discover it mid-verb, the router marks the
	// node dead, re-creates the sessions on the survivor, and the
	// clients' retry loops replay the cycles.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	close(barrier)
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d lost its session: %v", rank, err)
		}
	}
	if open := nodeOpenSessions(b); open != 0 {
		t.Errorf("surviving node holds %d sessions after release, want 0", open)
	}

	samples := scrape(t, r.Metrics())
	if got := samples["fed_failovers_total"]; got < 1 {
		t.Errorf("fed_failovers_total = %d, want >= 1 (4 sessions died with the node)", got)
	}
	if got := samples[`fed_nodes{state="dead"}`]; got != 1 {
		t.Errorf(`fed_nodes{state="dead"} = %d, want 1`, got)
	}
	if got := samples[`fed_nodes{state="alive"}`]; got != 1 {
		t.Errorf(`fed_nodes{state="alive"} = %d, want 1`, got)
	}
	if got := samples[`fed_placed_sessions{node="0"}`] + samples[`fed_placed_sessions{node="1"}`]; got != 0 {
		t.Errorf("fed_placed_sessions sum = %d after all releases, want 0", got)
	}
}

// TestDrainUnderLoadByteIdentical drains a whole node while pipelined
// clients stream cycles through the router. It pins the response-write
// vs background-evacuation race: a verb response can alias its sticky
// connection's pooled read buffer, and the evacuation goroutine used to
// be able to reuse (MIG) and pool (teardown) that buffer while the
// response bytes were still on their way to the client — serveConn now
// holds the session locks across the client write. Run under -race.
func TestDrainUnderLoadByteIdentical(t *testing.T) {
	const clients, cycles = 4, 6
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := directReference(t, "feddrain-ref", ref, clients)

	a := startNode(t, "feddrain-a", 2)
	b := startNode(t, "feddrain-b", 2)
	r := startRouter(t, "feddrain", "least-sessions", 10*time.Millisecond, a, b)

	var (
		firstCycle sync.WaitGroup
		barrier    = make(chan struct{})
		wg         sync.WaitGroup
		errs       = make([]error, clients)
	)
	firstCycle.Add(clients)
	for rank := 0; rank < clients; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			first := true
			done := func() {
				if first {
					first = false
					firstCycle.Done()
					<-barrier
				}
			}
			errs[rank] = func() error {
				c, err := ipc.Dial(r.Addr(), "")
				if err != nil {
					done()
					return err
				}
				defer c.Close()
				sess, err := c.Request(ref, rank)
				if err != nil {
					done()
					return err
				}
				in := make([]byte, sess.InBytes())
				out := make([]byte, sess.OutBytes())
				w.Fill(rank, in)
				for i := 0; i < cycles; i++ {
					if err := sess.RunCycle(in, out); err != nil {
						done()
						return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
					}
					if !bytes.Equal(out, want[rank]) {
						done()
						return fmt.Errorf("rank %d cycle %d: output differs from serial reference", rank, i)
					}
					done()
				}
				return sess.Release()
			}()
		}(rank)
	}
	firstCycle.Wait()
	// Drain node a with its sessions mid-run, wait for the poller to see
	// the advertisement (the draining transition spawns the background
	// evacuation), then release the clients so their response traffic
	// overlaps the evacuation's MIG/ADP trips.
	a.DrainAll()
	for deadline := 400; r.backends[0].getState() != stateDraining; deadline-- {
		if deadline == 0 {
			t.Fatal("router never saw node 0 draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(barrier)
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if ao, bo := nodeOpenSessions(a), nodeOpenSessions(b); ao != 0 || bo != 0 {
		t.Errorf("backends hold %d/%d sessions after release, want 0/0", ao, bo)
	}
	samples := scrape(t, r.Metrics())
	if got := samples["fed_failovers_total"]; got < 1 {
		t.Errorf("fed_failovers_total = %d, want >= 1 (node 0's sessions had to move)", got)
	}
}

// TestEvacuationWaitsForInFlightResponse pins the response-write vs
// background-evacuation race deterministically: a raw client issues RCV
// and delays reading the response. The inproc pipe is synchronous, so
// the router parks inside WriteResponse with the response Data still
// aliasing the sticky connection's pooled read buffer. The whole source
// node then drains; the background evacuation must NOT migrate the
// session — its MIG would read its blob into, and then pool, that very
// buffer — until the response has left. Run under -race: unlocking the
// session before the client write fails both the byte comparison and
// the race detector here.
func TestEvacuationWaitsForInFlightResponse(t *testing.T) {
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}
	want := directReference(t, "fedpark-ref", ref, 1)
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}

	a := startNode(t, "fedpark-a", 1)
	b := startNode(t, "fedpark-b", 1)
	r := startRouter(t, "fedpark", "least-sessions", 10*time.Millisecond, a, b)

	nc, _, err := transport.DialAddr(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := transport.WritePreamble(nc, false); err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(nc)

	trip := func(req transport.Request) transport.Response {
		t.Helper()
		if err := conn.WriteRequest(req); err != nil {
			t.Fatalf("%s: %v", req.Verb, err)
		}
		resp, err := conn.ReadResponse()
		if err != nil {
			t.Fatalf("%s: %v", req.Verb, err)
		}
		if resp.Status != "ACK" {
			t.Fatalf("%s: %s", req.Verb, resp.Err)
		}
		return resp
	}
	opened := trip(transport.Request{Verb: "REQ", Ref: &ref, Rank: 0})
	vid := opened.Session
	in := make([]byte, opened.InBytes)
	w.Fill(0, in)
	trip(transport.Request{Verb: "SND", Session: vid, Data: in})
	trip(transport.Request{Verb: "STR", Session: vid})
	trip(transport.Request{Verb: "STP", Session: vid})

	src, dst, srcIdx := a, b, 0
	if nodeOpenSessions(b) == 1 {
		src, dst, srcIdx = b, a, 1
	}
	if nodeOpenSessions(src) != 1 {
		t.Fatal("no node owns the session")
	}

	// RCV goes out but its response stays unread: the router trips the
	// backend, then parks in WriteResponse on the synchronous pipe.
	if err := conn.WriteRequest(transport.Request{Verb: "RCV", Session: vid}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the proxy reach the parked write

	src.DrainAll()
	for deadline := 400; r.backends[srcIdx].getState() != stateDraining; deadline-- {
		if deadline == 0 {
			t.Fatal("router never saw the source node draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give the background evacuation every chance to (wrongly) touch the
	// parked session before the response is read.
	time.Sleep(150 * time.Millisecond)

	// The evacuation must be parked on the session lock: as long as the
	// RCV response is in flight, the session cannot have moved — a move
	// would have read the MIG blob into, and then pooled, the very
	// buffer the in-flight response aliases.
	if nodeOpenSessions(dst) != 0 {
		t.Fatal("evacuation moved the session while its RCV response was still in flight")
	}

	resp, err := conn.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ACK" {
		t.Fatalf("RCV: %s", resp.Err)
	}
	if !bytes.Equal(resp.Data, want[0]) {
		t.Fatal("RCV bytes corrupted by concurrent evacuation")
	}

	// With the response delivered the evacuation proceeds: the session
	// lands on the survivor and RLS empties both nodes.
	for deadline := 400; nodeOpenSessions(dst) != 1; deadline-- {
		if deadline == 0 {
			t.Fatal("session never migrated after the response was read")
		}
		time.Sleep(5 * time.Millisecond)
	}
	trip(transport.Request{Verb: "RLS", Session: vid})
	if ao, bo := nodeOpenSessions(a), nodeOpenSessions(b); ao != 0 || bo != 0 {
		t.Errorf("backends hold %d/%d sessions after release, want 0/0", ao, bo)
	}
}

// TestFederatedSuspendResume pins that SUS/RES proxy through the
// router like any session verb.
func TestFederatedSuspendResume(t *testing.T) {
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	want := directReference(t, "fedsus-ref", ref, 1)
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	a := startNode(t, "fedsus-a", 1)
	b := startNode(t, "fedsus-b", 1)
	r := startRouter(t, "fedsus", "least-sessions", 50*time.Millisecond, a, b)
	c, err := ipc.DialOptions(r.Addr(), ipc.Options{NoPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	w.Fill(0, in)
	if err := sess.SendInput(in); err != nil {
		t.Fatal(err)
	}
	if err := sess.Suspend(); err != nil {
		t.Fatalf("Suspend through the router: %v", err)
	}
	if err := sess.Resume(); err != nil {
		t.Fatalf("Resume through the router: %v", err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Receive(out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want[0]) {
		t.Fatal("suspend/resume through the router changed the output bytes")
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}
