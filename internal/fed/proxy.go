package fed

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

func errResp(err error) transport.Response {
	return transport.Response{Status: "ERR", Err: err.Error()}
}

// retryableResp marks an error the client should replay after backoff —
// the session is mid-move between nodes, or just landed on a fresh one.
func retryableResp(msg string) transport.Response {
	return transport.Response{Status: "ERR", Err: gvm.Retryable(msg)}
}

// lostSession reports whether a backend response means the node no
// longer holds the session's state — it restarted, or tore the session
// down mid-shutdown between our frames. Either way the state is gone
// and recovery is the same as a dropped connection: re-create on a
// survivor and let the client replay.
func lostSession(resp transport.Response) bool {
	return resp.Status == "ERR" &&
		(strings.Contains(resp.Err, "unknown session") ||
			strings.Contains(resp.Err, "is closed"))
}

// batchVerbRank mirrors the daemon's BAT ordering rule so the router
// rejects malformed batches with the same error a direct connection
// would see.
var batchVerbRank = map[string]int{"SND": 0, "STR": 1, "STP": 2, "RCV": 3, "RLS": 4}

func (r *Router) accept(ln transport.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Client handlers are not tracked by wg — one may sit in a slow
		// backend round trip, and Close must not wait for it.
		go r.serveConn(conn)
	}
}

// serveConn runs one client connection's request loop. The router
// accepts either control-plane codec — it re-frames every hop, so a JSON
// debugging client can front binary backends.
func (r *Router) serveConn(nc net.Conn) {
	clientJSON, err := transport.ReadPreamble(nc)
	if err != nil {
		nc.Close()
		return
	}
	conn := transport.NewConn(nc)
	if clientJSON {
		conn = transport.NewConnJSON(nc)
	}
	cc := &clientConn{conn: conn}
	defer func() {
		conn.Close()
		conn.Release()
		r.hangUp(cc)
	}()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && r.cfg.Log != nil {
				r.cfg.Log.Debug("client read", "err", err)
			}
			return
		}
		// Session verb responses can alias a sticky backend connection's
		// pooled read buffer (trip: "valid until the next trip"), and the
		// poller's background evacuate() migrates sessions concurrently —
		// its MIG trip reads into that same buffer and its teardown hands
		// the buffer back to the pool. The handlers therefore return with
		// the involved sessions still LOCKED; the locks drop only after
		// the response bytes have left for the client.
		var resp transport.Response
		var locked *fedSession
		var lockedMany []*fedSession
		switch req.Verb {
		case "REQ":
			resp = r.serveREQ(req, cc)
		case "BAT":
			resp, lockedMany = r.serveBAT(req, cc)
		case "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES":
			resp, locked = r.serveVerb(req, cc)
		default:
			resp = errResp(fmt.Errorf("fed: unknown verb %q", req.Verb))
		}
		werr := conn.WriteResponse(resp)
		if locked != nil {
			locked.mu.Unlock()
		}
		for _, s := range lockedMany {
			s.mu.Unlock()
		}
		if werr != nil {
			return
		}
	}
}

// hangUp releases every session a disconnected client left open:
// closing each sticky backend connection makes the backend daemon
// release the real session exactly as if the client had dialed it
// directly.
func (r *Router) hangUp(cc *clientConn) {
	for _, vid := range cc.owned {
		r.mu.Lock()
		s := r.sessions[vid]
		r.mu.Unlock()
		if s == nil || s.owner != cc {
			continue
		}
		s.mu.Lock()
		r.unregisterLocked(s, true)
		s.mu.Unlock()
	}
	cc.owned = nil
}

// serveREQ places a new session at the node level and opens its sticky
// backend connection. The data plane is forced inline: the client's
// payloads must travel through the router, and a shm or ring segment
// names a path on the backend's machine that the client cannot map.
func (r *Router) serveREQ(req transport.Request, cc *clientConn) transport.Response {
	if req.Ref == nil {
		return errResp(errors.New("fed: REQ needs a workload reference"))
	}
	w, err := workloads.FromRef(*req.Ref)
	if err != nil {
		return errResp(err)
	}
	spec := w.Spec(req.Rank)
	footprint := spec.InBytes + spec.OutBytes
	fwd := req
	fwd.Plane = transport.PlaneInline
	var lastErr error
	for attempt := 0; attempt <= len(r.backends); attempt++ {
		b, perr := r.place(footprint)
		if perr != nil {
			if lastErr != nil {
				perr = fmt.Errorf("%v (last backend error: %v)", perr, lastErr)
			}
			return errResp(fmt.Errorf("fed: %v", perr))
		}
		conn, nc, derr := r.dialBackend(b)
		if derr != nil {
			r.unplace(b, footprint)
			r.markDead(b, derr)
			lastErr = derr
			continue
		}
		start := time.Now()
		resp, terr := tripConn(conn, fwd)
		if terr != nil {
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			r.markDead(b, terr)
			lastErr = terr
			continue
		}
		r.met.lat("REQ").Observe(int64(time.Since(start)))
		if resp.Status != "ACK" {
			// The node's own admission said no; its error already names
			// each shard's health and headroom.
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			return resp
		}
		s := &fedSession{
			owner: cc,
			ref:   *req.Ref, rank: req.Rank,
			memQuota: req.MemQuota, priority: req.Priority, weight: req.Weight,
			inB: resp.InBytes, outB: resp.OutBytes,
			// A fresh session needs no restaging: a direct gvmd computes on
			// zero-filled staging, and the router must be indistinguishable.
			// Only a dead-node re-creation clears this.
			staged: true,
		}
		if len(resp.Data) > 0 {
			// Once the session is registered the background evacuation can
			// trip on this connection; don't let the response alias its
			// read buffer past the unlock below.
			resp.Data = append([]byte(nil), resp.Data...)
		}
		s.mu.Lock()
		s.attachLocked(b, resp.Session, conn, nc)
		vid := r.register(s)
		s.mu.Unlock()
		cc.owned = append(cc.owned, vid)
		if r.cfg.Log != nil {
			r.cfg.Log.Debug("session placed",
				"vsession", vid, "node", b.idx, "backend-session", resp.Session, "policy", r.placer.Policy())
		}
		resp.Session = vid
		return resp
	}
	return errResp(fmt.Errorf("fed: REQ: every placement attempt failed: %v", lastErr))
}

// tripConn performs one unmetered round trip on a backend connection
// (REQ/ADP setup hops, before the session has a sticky connection).
func tripConn(conn *transport.Conn, req transport.Request) (transport.Response, error) {
	if err := conn.WriteRequest(req); err != nil {
		return transport.Response{}, err
	}
	return conn.ReadResponse()
}

// trip performs one metered round trip on a session's sticky
// connection. Caller holds s.mu. The response's Data aliases the
// connection's read buffer: valid until the next trip on this session.
func (r *Router) trip(s *fedSession, req transport.Request) (transport.Response, error) {
	start := time.Now()
	if err := s.conn.WriteRequest(req); err != nil {
		return transport.Response{}, err
	}
	resp, err := s.conn.ReadResponse()
	if err != nil {
		return transport.Response{}, err
	}
	r.met.lat(req.Verb).Observe(int64(time.Since(start)))
	return resp, nil
}

// needsStagedInput reports whether a verb reads the session's staged
// input (or results derived from it). After a dead-node re-creation the
// fresh backend session's staging is zeroed; serving these verbs before
// the client re-stages would silently compute on zeros.
func needsStagedInput(verb string) bool {
	return verb == "STR" || verb == "STP" || verb == "RCV"
}

// serveVerb proxies one session verb over the session's sticky backend
// connection. This is the warm hop: a struct copy, two id rewrites, and
// the pooled zero-copy framing on both sides — no allocation.
//
// The returned session (when non-nil) is still LOCKED: the response may
// alias the sticky connection's read buffer, so the caller must write
// it to the client before unlocking, or a concurrent evacuation could
// overwrite or pool the buffer mid-write.
func (r *Router) serveVerb(req transport.Request, cc *clientConn) (transport.Response, *fedSession) {
	s, err := r.lookup(req.Session, cc)
	if err != nil {
		return errResp(err), nil
	}
	s.mu.Lock()
	if s.closed {
		return errResp(fmt.Errorf("fed: session %d is closed", s.vid)), s
	}
	if err := r.ensurePlacedLocked(s); err != nil {
		return errResp(err), s
	}
	if !s.staged && s.inB > 0 && needsStagedInput(req.Verb) {
		return retryableResp(fmt.Sprintf(
			"fed: session %d was re-created on node %d and its input is not restaged; re-send the cycle from SND",
			s.vid, s.b.idx)), s
	}
	fwd := req
	fwd.Session = s.realID
	resp, terr := r.trip(s, fwd)
	if terr != nil {
		r.markDead(s.b, terr)
		r.dropBackendLocked(s, true)
		return retryableResp(fmt.Sprintf("fed: %s: node %d lost mid-verb: %v", req.Verb, s.b.idx, terr)), s
	}
	if lostSession(resp) {
		// The node answered but no longer knows the session: it restarted
		// or tore down mid-shutdown between our frames. Same recovery as a
		// connection drop — re-create on the next attempt.
		node := s.b.idx
		r.dropBackendLocked(s, true)
		return retryableResp(fmt.Sprintf("fed: %s: node %d dropped session state: %s", req.Verb, node, resp.Err)), s
	}
	resp.Session = s.vid
	if resp.Status == "ACK" {
		switch req.Verb {
		case "SND":
			s.staged = true
		case "RLS":
			// A data-carrying response would still alias the buffer while
			// it is written to the client; leave it to the GC then.
			r.unregisterLocked(s, len(resp.Data) == 0)
			cc.dropOwned(s.vid)
		}
	}
	return resp, s
}

// serveBAT proxies a pipelined batch: it partitions the sub-requests
// into contiguous same-session runs, forwards each run as a BAT on that
// session's sticky connection, and merges the sub-responses back in
// order. Mirroring the daemon, the first failing sub-request stops the
// batch — later runs answer "skipped".
//
// The returned sessions are still LOCKED (same contract as serveVerb):
// the merged responses alias their sticky connections' read buffers, so
// the caller unlocks only after the client write.
func (r *Router) serveBAT(req transport.Request, cc *clientConn) (transport.Response, []*fedSession) {
	if len(req.Batch) == 0 {
		return errResp(errors.New("fed: empty BAT")), nil
	}
	type run struct {
		s          *fedSession
		start, end int // [start,end) in req.Batch
	}
	var runs []run
	var uniq []*fedSession
	lastRank := make(map[int]int, 2)
	for i := range req.Batch {
		sub := &req.Batch[i]
		rank, allowed := batchVerbRank[sub.Verb]
		if !allowed {
			return errResp(fmt.Errorf("transport: verb %q not allowed in BAT", sub.Verb)), nil
		}
		if len(sub.Batch) > 0 {
			return errResp(errors.New("transport: nested BAT")), nil
		}
		s, err := r.lookup(sub.Session, cc)
		if err != nil {
			return errResp(err), nil
		}
		if last, seen := lastRank[sub.Session]; seen && rank <= last {
			return errResp(fmt.Errorf(
				"transport: BAT verbs for session %d must appear once each, in SND<STR<STP<RCV<RLS order", sub.Session)), nil
		}
		if _, seen := lastRank[sub.Session]; !seen {
			uniq = append(uniq, s)
		}
		lastRank[sub.Session] = rank
		if len(runs) == 0 || runs[len(runs)-1].s != s {
			runs = append(runs, run{s: s, start: i, end: i + 1})
		} else {
			runs[len(runs)-1].end = i + 1
		}
	}
	// Sessions belong to exactly one connection and a connection serves
	// one frame at a time, so no two in-flight batches share a session —
	// locking in batch order cannot deadlock. The locks are handed back
	// to the caller, which drops them after the client write.
	for _, s := range uniq {
		s.mu.Lock()
	}
	out := transport.Response{Status: "ACK", Batch: make([]transport.Response, len(req.Batch))}
	failed := false
	for ri := range runs {
		rn := runs[ri]
		outs := out.Batch[rn.start:rn.end]
		if failed {
			for i := range outs {
				outs[i] = transport.Response{Status: "ERR", Session: rn.s.vid,
					Err: "transport: skipped after earlier BAT failure"}
			}
			continue
		}
		// A later run on the same session reuses its sticky connection's
		// read buffer; this run's RCV data must be copied out first.
		recursLater := false
		for _, later := range runs[ri+1:] {
			if later.s == rn.s {
				recursLater = true
				break
			}
		}
		r.forwardRun(rn.s, req.Batch[rn.start:rn.end], outs, recursLater)
		for i := range outs {
			if outs[i].Status == "ERR" {
				failed = true
			}
		}
	}
	return out, uniq
}

// forwardRun proxies one contiguous same-session slice of a BAT. Caller
// holds s.mu.
func (r *Router) forwardRun(s *fedSession, subs []transport.Request, outs []transport.Response, copyData bool) {
	fail := func(resp transport.Response) {
		resp.Session = s.vid
		for i := range outs {
			outs[i] = resp
		}
	}
	if s.closed {
		fail(errResp(fmt.Errorf("fed: session %d is closed", s.vid)))
		return
	}
	if err := r.ensurePlacedLocked(s); err != nil {
		fail(errResp(err))
		return
	}
	if !s.staged && s.inB > 0 && subs[0].Verb != "SND" {
		for i := range subs {
			if needsStagedInput(subs[i].Verb) {
				fail(retryableResp(fmt.Sprintf(
					"fed: session %d was re-created on node %d and its input is not restaged; re-send the cycle from SND",
					s.vid, s.b.idx)))
				return
			}
		}
	}
	fwd := transport.Request{Verb: "BAT", Batch: make([]transport.Request, len(subs))}
	for i := range subs {
		fwd.Batch[i] = subs[i]
		fwd.Batch[i].Session = s.realID
	}
	resp, terr := r.trip(s, fwd)
	if terr != nil {
		r.markDead(s.b, terr)
		r.dropBackendLocked(s, true)
		fail(retryableResp(fmt.Sprintf("fed: BAT: node %d lost mid-batch: %v", s.b.idx, terr)))
		return
	}
	if lostSession(resp) {
		// The node answered but no longer knows the session: it restarted
		// or tore the session down mid-shutdown between our frames. Same
		// recovery as a connection drop — re-create on the next attempt.
		node := s.b.idx
		r.dropBackendLocked(s, true)
		fail(retryableResp(fmt.Sprintf("fed: BAT: node %d dropped session state: %s", node, resp.Err)))
		return
	}
	if resp.Status != "ACK" {
		fail(transport.Response{Status: resp.Status, Err: resp.Err})
		return
	}
	for i := range resp.Batch {
		if lostSession(resp.Batch[i]) {
			node := s.b.idx
			r.dropBackendLocked(s, true)
			fail(retryableResp(fmt.Sprintf("fed: BAT: node %d dropped session state: %s", node, resp.Batch[i].Err)))
			return
		}
	}
	if len(resp.Batch) != len(subs) {
		fail(errResp(fmt.Errorf("fed: node %d returned %d responses for %d sub-requests", s.b.idx, len(resp.Batch), len(subs))))
		return
	}
	released := false
	for i := range subs {
		outs[i] = resp.Batch[i]
		outs[i].Session = s.vid
		if copyData && len(outs[i].Data) > 0 {
			outs[i].Data = append([]byte(nil), outs[i].Data...)
		}
		if outs[i].Status == "ACK" {
			switch subs[i].Verb {
			case "SND":
				s.staged = true
			case "RLS":
				released = true
			}
		}
	}
	if released {
		// The just-merged responses still alias the sticky connection's
		// read buffer, so the buffer is left to the GC, not the pool.
		r.unregisterLocked(s, false)
		s.owner.dropOwned(s.vid)
	}
}
