package gpusim

import (
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

func TestStreamInOrderExecution(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 4 << 20
	var total sim.Duration
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		s := c.NewStream()
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, true)
		k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024), CyclesPerThread: 1e5}
		start := p.Now()
		s.MemcpyH2DAsync(d, h, n)
		s.LaunchAsync(k)
		s.MemcpyD2HAsync(h, d, n)
		if s.Query() {
			t.Error("stream reports idle with queued work")
		}
		s.Synchronize(p)
		total = p.Now().Sub(start)
		if !s.Query() {
			t.Error("stream reports busy after Synchronize")
		}
	})
	run(t, env)
	// In-stream operations serialize: total >= sum of the parts.
	kt := sim.Duration(expectSingleKernelTime(dev.Arch(), &cuda.Kernel{
		Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024), CyclesPerThread: 1e5}) * 1e9)
	wantMin := arch.TransferTime(n, true, true) + kt + arch.TransferTime(n, false, true)
	if total < wantMin {
		t.Fatalf("stream pipeline took %v, less than serialized parts %v", total, wantMin)
	}
	if total > wantMin+sim.Millisecond {
		t.Fatalf("stream pipeline took %v, way more than parts %v", total, wantMin)
	}
}

func TestTwoStreamsOverlapCopyAndCompute(t *testing.T) {
	// Stream A computes while stream B transfers: with copy/compute
	// overlap, the makespan is close to max(copy, compute), not the sum.
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	// A kernel lasting ~10 ms and a transfer lasting ~7 ms.
	k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024),
		CyclesPerThread: 10e-3 * 32 * 1.15e9 / 1024}
	var n int64 = 20 << 20
	var makespan sim.Duration
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		sa, sb := c.NewStream(), c.NewStream()
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, true)
		start := p.Now()
		sa.LaunchAsync(k)
		sb.MemcpyH2DAsync(d, h, n)
		sa.Synchronize(p)
		sb.Synchronize(p)
		makespan = p.Now().Sub(start)
	})
	run(t, env)
	copyT := arch.TransferTime(n, true, true)
	if makespan > copyT+11*sim.Millisecond && makespan > 11*sim.Millisecond {
		t.Fatalf("makespan %v suggests no copy/compute overlap", makespan)
	}
	if makespan < 9*sim.Millisecond {
		t.Fatalf("makespan %v shorter than the kernel alone", makespan)
	}
	// Must be near max(kernel, copy) = ~10ms, not the ~13.7ms sum.
	if makespan > 11*sim.Millisecond {
		t.Fatalf("makespan %v, want ~10ms (overlapped)", makespan)
	}
}

func TestNoOverlapOnPreFermi(t *testing.T) {
	// Same scenario on a GT200-class device (no ConcurrentCopyExec):
	// the copy and the kernel serialize.
	env := sim.NewEnv()
	arch := fermi.TeslaC1060()
	dev := MustNew(env, Config{Arch: arch})
	kernelSec := 10e-3
	k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(512),
		CyclesPerThread: kernelSec * float64(arch.CoresPerSM) * arch.ClockHz / 512}
	var n int64 = 20 << 20
	var makespan sim.Duration
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		sa, sb := c.NewStream(), c.NewStream()
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, true)
		start := p.Now()
		sa.LaunchAsync(k)
		sb.MemcpyH2DAsync(d, h, n)
		sa.Synchronize(p)
		sb.Synchronize(p)
		makespan = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	copyT := arch.TransferTime(n, true, true)
	wantMin := copyT + sim.Duration(0.9*kernelSec*1e9)
	if makespan < wantMin {
		t.Fatalf("makespan %v < %v: copy and compute overlapped on pre-Fermi", makespan, wantMin)
	}
}

func TestStreamsFromManyProcessesConcurrentKernels(t *testing.T) {
	// Eight processes, one stream each under a single context (the GVM
	// arrangement): small kernels from all streams overlap almost fully.
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	mk := func() *cuda.Kernel {
		return &cuda.Kernel{Name: "ep", Grid: cuda.Dim(4), Block: cuda.Dim(128),
			CyclesPerThread: 1e7}
	}
	aloneK := mk()
	alone := sim.Duration(expectSingleKernelTime(arch, aloneK) * 1e9)
	var makespan sim.Duration
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		start := p.Now()
		done := env.NewEvent()
		left := 8
		for i := 0; i < 8; i++ {
			s := c.NewStream()
			ev := s.LaunchAsync(mk())
			ev.OnFire(func(any) {
				left--
				if left == 0 {
					done.Fire(nil)
				}
			})
		}
		p.Wait(done)
		makespan = p.Now().Sub(start)
	})
	run(t, env)
	// 8 x 4 blocks of 4 warps spread over 14 SMs: 3 blocks/SM = 12 warps,
	// still under the latency-hiding floor -> full concurrency.
	if d := float64(makespan-alone) / float64(alone); d > 0.02 {
		t.Fatalf("8 concurrent EP-like kernels: %v vs %v alone (+%.1f%%), want overlap",
			makespan, alone, 100*d)
	}
}

func TestStreamClose(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		s := c.NewStream()
		s.Close()
	})
	run(t, env) // deadlock-free: the runner exits on the sentinel
}

func TestGPUEventsTimeStreamSections(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 4 << 20
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		s := c.NewStream()
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, true)
		start := s.RecordEvent()
		s.MemcpyH2DAsync(d, h, n)
		afterCopy := s.RecordEvent()
		k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024), CyclesPerThread: 1e5}
		s.LaunchAsync(k)
		end := s.RecordEvent()
		if start.Query() && s.Busy() > 0 {
			// The first marker may already have run (it was at the head),
			// but the later ones cannot have.
			if end.Query() {
				t.Error("tail event complete while stream busy")
			}
		}
		s.Synchronize(p)
		if !start.Query() || !afterCopy.Query() || !end.Query() {
			t.Error("events incomplete after Synchronize")
		}
		copyT := start.Elapsed(afterCopy)
		if want := arch.TransferTime(n, true, true); copyT != want {
			t.Errorf("event-timed copy = %v, want %v", copyT, want)
		}
		if kernelT := afterCopy.Elapsed(end); kernelT <= 0 {
			t.Errorf("kernel section = %v", kernelT)
		}
		if start.Elapsed(end) != start.Elapsed(afterCopy)+afterCopy.Elapsed(end) {
			t.Error("event sections do not add up")
		}
	})
	run(t, env)
}

func TestGPUEventTimeBeforeCompletionPanics(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		s := c.NewStream()
		d := c.MustMalloc(1 << 20)
		h := dev.AllocHost(1<<20, false)
		s.MemcpyH2DAsync(d, h, 1<<20)
		ev := s.RecordEvent()
		defer func() {
			if recover() == nil {
				t.Error("Time on incomplete event did not panic")
			}
			s.Synchronize(p)
		}()
		_ = ev.Time()
	})
	run(t, env)
}

func TestGPUEventSynchronize(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 4 << 20
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		s := c.NewStream()
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, false)
		s.MemcpyH2DAsync(d, h, n)
		ev := s.RecordEvent()
		ev.Synchronize(p)
		if got, want := sim.Duration(p.Now()), arch.TransferTime(n, true, false); got < want {
			t.Errorf("Synchronize returned at %v, before the copy finished (%v)", got, want)
		}
	})
	run(t, env)
}
