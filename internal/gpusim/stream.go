package gpusim

import (
	"fmt"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
)

// Stream is a CUDA stream: a FIFO of asynchronous device operations.
// Operations within a stream execute in order; operations in different
// streams of the same context may overlap (copy/compute overlap and
// concurrent kernels), which is exactly the mechanism the paper's GVM uses
// to overlap work from different SPMD processes.
//
// A dedicated runner process drains the FIFO; the issuing process returns
// immediately from the *Async calls.
type Stream struct {
	ctx  *Context
	id   int
	ops  *sim.Store[streamOp]
	idle *sim.Event // created lazily by Synchronize while the stream is busy
	busy int        // queued + in-flight operations
}

type streamOp struct {
	run  func(p *sim.Proc)
	done *sim.Event // optional per-op completion event
	cb   func()     // optional completion callback (alloc-free alternative)
}

// NewStream creates a stream in this context and starts its runner.
func (c *Context) NewStream() *Stream {
	c.mustLive()
	c.dev.nextStreamID++
	s := &Stream{
		ctx: c,
		id:  c.dev.nextStreamID,
		ops: sim.NewStore[streamOp](c.dev.env, 0),
	}
	c.dev.env.Go(fmt.Sprintf("stream-%d", s.id), s.runner)
	return s
}

// ID returns the stream's process-unique id.
func (s *Stream) ID() int { return s.id }

// Context returns the owning context.
func (s *Stream) Context() *Context { return s.ctx }

func (s *Stream) runner(p *sim.Proc) {
	p.Daemonize() // an idle runner waiting for work is not a deadlock
	for {
		op := s.ops.Get(p)
		if op.run == nil { // shutdown sentinel
			return
		}
		op.run(p)
		if op.done != nil {
			op.done.Fire(nil)
		}
		if op.cb != nil {
			op.cb()
		}
		s.busy--
		if s.busy == 0 && s.idle != nil {
			s.idle.Fire(nil)
			s.idle = nil
		}
	}
}

// Close shuts the runner down after all queued work completes.
func (s *Stream) Close() {
	s.ops.TryPut(streamOp{})
}

func (s *Stream) enqueue(run func(p *sim.Proc)) *sim.Event {
	done := s.ctx.dev.env.NewEvent()
	s.busy++
	s.ops.TryPut(streamOp{run: run, done: done}) // unbounded store: never fails
	return done
}

// EnqueueCB enqueues run with an optional completion callback in place of
// the per-op completion event: the alloc-free form of enqueue. The GVM's
// flush hot path uses it with closures prebound at session setup so a
// steady-state cycle enqueues stream work without a single allocation. cb
// (may be nil) runs on the scheduler goroutine right after run completes.
func (s *Stream) EnqueueCB(run func(p *sim.Proc), cb func()) {
	s.busy++
	s.ops.TryPut(streamOp{run: run, cb: cb})
}

// MemcpyH2DAsync enqueues a host-to-device copy of n bytes and returns
// its completion event.
func (s *Stream) MemcpyH2DAsync(dst cuda.DevPtr, src *HostBuffer, n int64) *sim.Event {
	return s.enqueue(func(p *sim.Proc) { s.ctx.memcpyH2D(p, dst, src, 0, n) })
}

// MemcpyD2HAsync enqueues a device-to-host copy of n bytes.
func (s *Stream) MemcpyD2HAsync(dst *HostBuffer, src cuda.DevPtr, n int64) *sim.Event {
	return s.enqueue(func(p *sim.Proc) { s.ctx.memcpyD2H(p, dst, 0, src, n) })
}

// LaunchAsync enqueues a kernel launch. Invalid kernels surface when the
// operation executes (the runner panics), so callers should Validate
// kernels up front — the GVM does this when a client registers work.
func (s *Stream) LaunchAsync(k *cuda.Kernel) *sim.Event {
	return s.enqueue(func(p *sim.Proc) {
		done, err := s.ctx.LaunchAsync(p, k)
		if err != nil {
			panic(fmt.Sprintf("gpusim: stream %d: %v", s.id, err))
		}
		p.Wait(done)
	})
}

// Busy reports the number of queued plus in-flight operations.
func (s *Stream) Busy() int { return s.busy }

// Query reports whether the stream has drained (cudaStreamQuery).
func (s *Stream) Query() bool { return s.busy == 0 }

// Synchronize blocks the calling process until the stream drains.
func (s *Stream) Synchronize(p *sim.Proc) {
	for s.busy > 0 {
		if s.idle == nil {
			s.idle = s.ctx.dev.env.NewEvent()
		}
		p.Wait(s.idle)
	}
}

// GPUEvent is a CUDA-event-style marker recorded into a stream: it
// completes when every operation enqueued before it has executed, and it
// remembers the virtual instant at which that happened — the device-side
// timing primitive (cudaEventRecord / cudaEventElapsedTime).
type GPUEvent struct {
	done *sim.Event
	at   sim.Time
}

// RecordEvent enqueues a marker at the stream's current tail.
func (s *Stream) RecordEvent() *GPUEvent {
	ev := &GPUEvent{done: s.ctx.dev.env.NewEvent()}
	s.enqueue(func(p *sim.Proc) {
		ev.at = p.Now()
		ev.done.Fire(nil)
	})
	return ev
}

// Query reports whether the marker has executed (cudaEventQuery).
func (e *GPUEvent) Query() bool { return e.done.Fired() }

// Synchronize blocks the process until the marker executes.
func (e *GPUEvent) Synchronize(p *sim.Proc) { p.Wait(e.done) }

// Time returns the virtual instant the marker executed; it panics when
// the event has not completed (like reading an unrecorded cudaEvent).
func (e *GPUEvent) Time() sim.Time {
	if !e.done.Fired() {
		panic("gpusim: Time on an incomplete GPUEvent")
	}
	return e.at
}

// Elapsed returns the device time between two completed events
// (cudaEventElapsedTime); negative if b executed before e.
func (e *GPUEvent) Elapsed(b *GPUEvent) sim.Duration {
	return b.Time().Sub(e.Time())
}
