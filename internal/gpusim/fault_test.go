package gpusim

import (
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
)

func TestParseFaultSpec(t *testing.T) {
	p, err := ParseFaultSpec("gpu=0,after=25,kind=hang")
	if err != nil {
		t.Fatal(err)
	}
	if p.ForGPU(0) == nil {
		t.Fatal("deterministic plan minted no injector for its target gpu")
	}
	if p.ForGPU(1) != nil {
		t.Fatal("gpu=0 plan minted an injector for gpu 1")
	}

	p, err = ParseFaultSpec("rate=0.01,seed=7,kinds=hang|fatal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if p.ForGPU(i) == nil {
			t.Fatalf("rate plan (gpu unset = all) minted no injector for gpu %d", i)
		}
	}

	for _, bad := range []string{
		"",                         // neither after nor rate
		"gpu=0",                    // no trigger
		"after=3,rate=0.5",         // mixing forms
		"after=3,kind=explodes",    // unknown kind
		"rate=0.5,kinds=hang|nope", // unknown kind in list
		"after",                    // not key=value
		"banana=7,after=1",         // unknown key
		"gpu=zero,after=1",         // unparseable int
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if p.ForGPU(0) != nil {
		t.Fatal("nil plan minted an injector")
	}
	var fi *FaultInjector
	fi.tick(nil) // must not panic
}

func TestInjectFaultEscalatesOnly(t *testing.T) {
	_, dev := newTestDevice(t, false)
	var seen []FaultKind
	dev.OnFault(func(k FaultKind) { seen = append(seen, k) })
	dev.InjectFault(XidMemory)
	dev.InjectFault(XidMemory) // same severity: no-op
	dev.InjectFault(XidFatal)
	dev.InjectFault(XidHang) // downgrade: no-op
	if dev.Fault() != XidFatal {
		t.Fatalf("fault = %v, want fatal (escalate-only)", dev.Fault())
	}
	if len(seen) != 2 || seen[0] != XidMemory || seen[1] != XidFatal {
		t.Fatalf("OnFault callbacks saw %v, want [memory fatal]", seen)
	}
}

// TestMemoryFaultFailsMallocsNotCopies pins the evacuability contract:
// a memory-faulted device rejects new allocations but keeps serving
// copies, so the failover engine can always snapshot resident arenas
// device-to-host.
func TestMemoryFaultFailsMallocsNotCopies(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("t", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		ptr, err := c.Malloc(1024)
		if err != nil {
			t.Errorf("healthy Malloc: %v", err)
			return
		}
		dev.InjectFault(XidMemory)
		if _, err := c.Malloc(1024); err == nil {
			t.Error("Malloc succeeded on a memory-faulted device")
		} else if _, ok := IsFault(err); !ok {
			t.Errorf("Malloc error %v is not a FaultError", err)
		}
		// D2H evacuation still works.
		host := dev.AllocHost(1024, true)
		c.MemcpyD2H(p, host, ptr, 1024)
		// Kernels still launch: memory faults degrade, they do not hang.
		k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(1), Block: cuda.Dim(128), CyclesPerThread: 1e3}
		done, err := c.LaunchAsync(p, k)
		if err != nil {
			t.Errorf("launch on memory-faulted device: %v", err)
			return
		}
		if v := p.Wait(done); v != nil {
			t.Errorf("kernel on memory-faulted device completed with %v", v)
		}
	})
	run(t, env)
}

// TestHangFaultAbortsInFlightKernels pins the abort path: a hang fault
// fires every in-flight kernel's completion event with a *FaultError
// payload, and later launches fail synchronously.
func TestHangFaultAbortsInFlightKernels(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("t", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		k := &cuda.Kernel{Name: "long", Grid: cuda.Dim(28), Block: cuda.Dim(1024), CyclesPerThread: 1e6}
		done, err := c.LaunchAsync(p, k)
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		env.Go("fault", func(q *sim.Proc) {
			q.Sleep(sim.Millisecond) // well inside the kernel's runtime
			dev.InjectFault(XidHang)
		})
		v := p.Wait(done)
		err, ok := v.(error)
		if !ok {
			t.Errorf("aborted kernel completed with %v, want a FaultError payload", v)
			return
		}
		fe, ok := IsFault(err)
		if !ok || fe.Kind != XidHang {
			t.Errorf("aborted kernel payload = %v, want xid hang FaultError", err)
		}
		if _, err := c.LaunchAsync(p, k); err == nil {
			t.Error("launch succeeded on a hung device")
		}
	})
	run(t, env)
}

// TestFaultInjectorAfterN checks the deterministic injector: exactly the
// N-th launch trips the fault, and only one fault ever fires.
func TestFaultInjectorAfterN(t *testing.T) {
	env, dev := newTestDevice(t, false)
	plan, err := ParseFaultSpec("after=2,kind=hang")
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultInjector(plan.ForGPU(0))
	env.Go("t", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(1), Block: cuda.Dim(128), CyclesPerThread: 1e3}
		done, err := c.LaunchAsync(p, k)
		if err != nil {
			t.Errorf("launch 1: %v", err)
			return
		}
		if v := p.Wait(done); v != nil {
			t.Errorf("launch 1 completed with %v", v)
		}
		if dev.Fault() != FaultNone {
			t.Error("fault fired before its launch count")
		}
		if _, err := c.LaunchAsync(p, k); err == nil {
			t.Error("launch 2 should trip the injector and fail")
		} else if fe, ok := IsFault(err); !ok || fe.Kind != XidHang {
			t.Errorf("launch 2 error = %v, want xid hang", err)
		}
	})
	run(t, env)
}

// TestFaultInjectorRateSeeded checks the random injector is
// deterministic per seed and independent across GPUs.
func TestFaultInjectorRateSeeded(t *testing.T) {
	plan, err := ParseFaultSpec("rate=1,seed=9,kinds=fatal")
	if err != nil {
		t.Fatal(err)
	}
	env, dev := newTestDevice(t, false)
	dev.SetFaultInjector(plan.ForGPU(0))
	env.Go("t", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		k := &cuda.Kernel{Name: "k", Grid: cuda.Dim(1), Block: cuda.Dim(128), CyclesPerThread: 1e3}
		// rate=1: the very first launch must fault.
		if _, err := c.LaunchAsync(p, k); err == nil {
			t.Error("rate=1 injector did not fire on the first launch")
		} else if fe, ok := IsFault(err); !ok || fe.Kind != XidFatal {
			t.Errorf("error = %v, want xid fatal", err)
		}
	})
	run(t, env)
}
