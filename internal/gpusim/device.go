// Package gpusim is a deterministic discrete-event simulator of a
// Fermi-class GPU: device memory, DMA engines, contexts with switch costs,
// streams, and an SM scheduler with processor-sharing block execution,
// concurrent-kernel window and copy/compute overlap.
//
// The simulator has two modes. In functional mode it allocates real
// backing memory, memcpys move real bytes, and kernels with functional
// bodies compute real results — used by tests and examples. In timing-only
// mode no bytes move and only the virtual clock advances — used by the
// paper-scale experiments, where buffers reach hundreds of megabytes.
package gpusim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/trace"
)

// ComputeMode mirrors the CUDA device compute modes (nvidia-smi -c).
type ComputeMode int

const (
	// ComputeDefault allows any number of contexts to share the device
	// ("sharing compute mode", the paper's baseline configuration).
	ComputeDefault ComputeMode = iota
	// ComputeExclusive admits a single context — the configuration a
	// GVM deployment would use so no process can bypass the manager.
	ComputeExclusive
	// ComputeProhibited admits no contexts at all.
	ComputeProhibited
)

func (m ComputeMode) String() string {
	switch m {
	case ComputeDefault:
		return "default"
	case ComputeExclusive:
		return "exclusive"
	case ComputeProhibited:
		return "prohibited"
	default:
		return fmt.Sprintf("ComputeMode(%d)", int(m))
	}
}

// Config configures a simulated device.
type Config struct {
	Arch       fermi.Arch
	Functional bool          // allocate backing memory and run kernel bodies
	Mode       ComputeMode   // context admission policy (default: shared)
	Tracer     *trace.Tracer // optional execution tracer
	// ExecWorkers sizes the worker pool that runs functional kernel
	// bodies: 0 = GOMAXPROCS (parallel across blocks, bit-identical for
	// the block-disjoint kernels in this repo), 1 = strictly serial,
	// n > 1 = fixed pool. Virtual timing is unaffected either way; the
	// knob only changes host CPU usage while a launch's body executes.
	ExecWorkers int
	// PreemptRatio gates wave-boundary preemption in the SM scheduler: a
	// pending kernel preempts an active one iff its weight exceeds
	// ratio x the active kernel's weight. 0 means the default of 1.0
	// (any strictly higher weight preempts); negative disables
	// preemption entirely.
	PreemptRatio float64
}

// Device is one simulated GPU attached to a simulation environment.
type Device struct {
	env        *sim.Env
	arch       fermi.Arch
	functional bool
	tracer     *trace.Tracer
	exec       *cuda.Executor // runs functional kernel bodies

	// Functional-mode backing memory, one slice per live allocation,
	// sorted by device address. Memory use is proportional to what is
	// allocated, not to the card's capacity.
	bufs  []devBuf
	alloc *Allocator

	h2dEngine *sim.Resource
	d2hEngine *sim.Resource
	exclusive *sim.Resource // serializes copies and kernels when the arch lacks overlap

	driver       *sim.Resource // serializes device init and context creation
	initialized  bool
	mode         ComputeMode
	liveCtxs     int
	nextCtxID    int
	nextStreamID int

	arbOwner     *Context // context currently owning the device
	arbHolder    bool
	arbQueue     []arbWaiter
	sched        *smScheduler
	preemptRatio float64

	// XID-style fault state (fault.go). index labels errors and
	// telemetry; fault is atomic so health probes may read it off the
	// owner goroutine; onFault callbacks drive the node health machine;
	// injector, when set, is ticked once per kernel launch.
	index    int
	fault    atomic.Int32
	onFault  []func(FaultKind)
	injector *FaultInjector

	// Counters for tests and reporting.
	ContextSwitches int
	BytesH2D        int64
	BytesD2H        int64
	KernelsRun      int
	// preemptions counts wave-boundary preemptions (kernels demoted from
	// the concurrent-kernel window so a higher-weight kernel could run).
	// Atomic so metrics scrapers may read it off the owner goroutine.
	preemptions atomic.Int64
}

// Preemptions returns the wave-boundary preemption count. Safe to call
// from any goroutine.
func (d *Device) Preemptions() int64 { return d.preemptions.Load() }

type arbWaiter struct {
	ctx   *Context
	grant *sim.Event
}

// New creates a simulated device. The architecture must validate.
func New(env *sim.Env, cfg Config) (*Device, error) {
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		env:        env,
		arch:       cfg.Arch,
		functional: cfg.Functional,
		mode:       cfg.Mode,
		tracer:     cfg.Tracer,
		exec:       cuda.NewExecutor(cfg.ExecWorkers),
		alloc:      NewAllocator(cfg.Arch.MemBytes, 256),
		driver:     env.NewResource(1),
	}
	switch {
	case cfg.PreemptRatio < 0:
		d.preemptRatio = 0 // disabled
	case cfg.PreemptRatio == 0:
		d.preemptRatio = 1.0
	default:
		d.preemptRatio = cfg.PreemptRatio
	}
	d.h2dEngine = env.NewResource(1)
	if cfg.Arch.CopyEngines >= 2 {
		d.d2hEngine = env.NewResource(1)
	} else {
		d.d2hEngine = d.h2dEngine
	}
	if !cfg.Arch.ConcurrentCopyExec {
		d.exclusive = env.NewResource(1)
	}
	d.sched = newSMScheduler(env, d)
	return d, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(env *sim.Env, cfg Config) *Device {
	d, err := New(env, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Env returns the simulation environment the device lives in.
func (d *Device) Env() *sim.Env { return d.env }

// Arch returns the device's architecture description.
func (d *Device) Arch() fermi.Arch { return d.arch }

// Functional reports whether the device carries real data.
func (d *Device) Functional() bool { return d.functional }

// MemInUse returns allocated device memory in bytes.
func (d *Device) MemInUse() int64 { return d.alloc.InUse() }

// MemResident returns physically resident device memory in bytes (an
// alias of MemInUse under the residency layer's vocabulary).
func (d *Device) MemResident() int64 { return d.alloc.Resident() }

// MemReserved returns the logical bytes promised to sessions; may
// exceed Arch().MemBytes under overcommit.
func (d *Device) MemReserved() int64 { return d.alloc.Reserved() }

// Reserve records n logical bytes as promised to a session.
func (d *Device) Reserve(n int64) { d.alloc.Reserve(n) }

// Unreserve returns n logical bytes to the pool.
func (d *Device) Unreserve(n int64) { d.alloc.Unreserve(n) }

// LargestFree returns the largest contiguous free span of device memory.
func (d *Device) LargestFree() int64 { return d.alloc.LargestFree() }

// RoundUp returns n rounded up to the allocator's alignment.
func (d *Device) RoundUp(n int64) int64 { return d.alloc.RoundUp(n) }

// SetEvictor installs the allocator's make-room callback; see
// Allocator.SetEvictor.
func (d *Device) SetEvictor(fn func(need int64) bool) { d.alloc.SetEvictor(fn) }

// devBuf is one functional-mode allocation's backing store.
type devBuf struct {
	start cuda.DevPtr
	data  []byte
}

// Bytes implements cuda.Memory: a mutable view of device memory. In
// timing-only mode it returns nil. The range must lie within a single
// live allocation.
func (d *Device) Bytes(p cuda.DevPtr, n int64) []byte {
	if !d.functional {
		return nil
	}
	if p == 0 || n < 0 {
		panic(fmt.Sprintf("gpusim: device memory access ptr=%#x n=%d", uint64(p), n))
	}
	i := sort.Search(len(d.bufs), func(i int) bool { return d.bufs[i].start > p }) - 1
	if i >= 0 {
		b := d.bufs[i]
		off := int64(p - b.start)
		if off+n <= int64(len(b.data)) {
			return b.data[off : off+n : off+n]
		}
	}
	panic(fmt.Sprintf("gpusim: device memory access outside any allocation: ptr=%#x n=%d", uint64(p), n))
}

// attachBacking registers functional backing for a fresh allocation.
func (d *Device) attachBacking(p cuda.DevPtr, n int64) {
	if !d.functional {
		return
	}
	i := sort.Search(len(d.bufs), func(i int) bool { return d.bufs[i].start > p })
	d.bufs = append(d.bufs, devBuf{})
	copy(d.bufs[i+1:], d.bufs[i:])
	d.bufs[i] = devBuf{start: p, data: make([]byte, n)}
}

// detachBacking drops an allocation's backing on free.
func (d *Device) detachBacking(p cuda.DevPtr) {
	if !d.functional {
		return
	}
	i := sort.Search(len(d.bufs), func(i int) bool { return d.bufs[i].start >= p })
	if i < len(d.bufs) && d.bufs[i].start == p {
		d.bufs = append(d.bufs[:i], d.bufs[i+1:]...)
	}
}

func (d *Device) emit(lane, label string, start, end sim.Time) {
	if d.tracer != nil {
		d.tracer.Add(lane, label, start, end)
	}
}

// tracing reports whether emit would record anything; call sites that
// format labels check it first so an untraced run never pays the
// fmt.Sprintf (it is the only allocation on several hot paths).
func (d *Device) tracing() bool { return d.tracer != nil }

// Context is a GPU context. Every process in the non-virtualized baseline
// owns one; the virtualization manager owns exactly one for everybody.
type Context struct {
	dev       *Device
	id        int
	destroyed bool

	// SwitchCost overrides the architecture's context-switch cost when
	// nonzero; the paper's Table II measures different switch costs for
	// different applications (context footprints differ).
	SwitchCost sim.Duration
}

// TryCreateContext initializes the device (first call only) and creates
// a context, paying the driver costs on the calling process's virtual
// time. Creation is serialized on the driver lock, so N processes
// initializing simultaneously pay DeviceInitCost + N x ContextCreateCost
// in total, which is the paper's Tinit. The device's compute mode may
// refuse admission: exclusive mode admits one live context, prohibited
// mode none — exactly CUDA's semantics.
func (d *Device) TryCreateContext(p *sim.Proc) (*Context, error) {
	start := p.Now()
	d.driver.Acquire(p, 1)
	defer d.driver.Release(1)
	switch d.mode {
	case ComputeProhibited:
		return nil, fmt.Errorf("gpusim: %s: compute mode prohibits contexts", d.arch.Name)
	case ComputeExclusive:
		if d.liveCtxs > 0 {
			return nil, fmt.Errorf("gpusim: %s: exclusive compute mode, a context already exists", d.arch.Name)
		}
	}
	if !d.initialized {
		p.Sleep(d.arch.DeviceInitCost)
		d.initialized = true
	}
	p.Sleep(d.arch.ContextCreateCost)
	d.nextCtxID++
	d.liveCtxs++
	c := &Context{dev: d, id: d.nextCtxID}
	d.emit("driver", fmt.Sprintf("ctx%d create", c.id), start, p.Now())
	return c, nil
}

// CreateContext is TryCreateContext for callers that own the device's
// admission policy (the manager, tests); it panics on refusal.
func (d *Device) CreateContext(p *sim.Proc) *Context {
	c, err := d.TryCreateContext(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Mode returns the device's compute mode.
func (d *Device) Mode() ComputeMode { return d.mode }

// LiveContexts returns the number of undestroyed contexts.
func (d *Device) LiveContexts() int { return d.liveCtxs }

// ID returns the context's device-unique id.
func (c *Context) ID() int { return c.id }

// Device returns the device the context belongs to.
func (c *Context) Device() *Device { return c.dev }

// Destroy marks the context dead; further operations panic. The
// device-admission slot is returned (relevant in exclusive compute mode).
func (c *Context) Destroy() {
	if !c.destroyed {
		c.destroyed = true
		c.dev.liveCtxs--
	}
}

func (c *Context) mustLive() {
	if c.destroyed {
		panic(fmt.Sprintf("gpusim: use of destroyed context %d", c.id))
	}
}

// switchCost returns the cost of switching the device to this context.
func (c *Context) switchCost() sim.Duration {
	if c.SwitchCost != 0 {
		return c.SwitchCost
	}
	return c.dev.arch.ContextSwitchCost
}

// Acquire makes this context current on the device, blocking the process
// until the device is free (strict FIFO with other contexts). If the
// device was last owned by a different context, the context-switch cost is
// paid on this process's virtual time. Acquire/Release bracket a unit of
// work that must not interleave with other contexts — e.g. one full
// send/compute/retrieve cycle in the non-virtualized baseline, or the
// whole lifetime of the virtualization manager.
func (c *Context) Acquire(p *sim.Proc) {
	c.mustLive()
	d := c.dev
	if d.arbHolder {
		w := arbWaiter{ctx: c, grant: d.env.NewEvent()}
		d.arbQueue = append(d.arbQueue, w)
		p.Wait(w.grant)
	} else {
		d.arbHolder = true
	}
	if d.arbOwner != nil && d.arbOwner != c {
		start := p.Now()
		p.Sleep(c.switchCost())
		d.ContextSwitches++
		d.emit("driver", fmt.Sprintf("switch ctx%d->ctx%d", d.arbOwner.id, c.id), start, p.Now())
	}
	d.arbOwner = c
}

// Release lets the next queued context acquire the device.
func (c *Context) Release() {
	d := c.dev
	if !d.arbHolder || d.arbOwner != c {
		panic("gpusim: Release of device not held by this context")
	}
	if len(d.arbQueue) == 0 {
		d.arbHolder = false
		return
	}
	next := d.arbQueue[0]
	d.arbQueue = d.arbQueue[1:]
	next.grant.Fire(nil)
}

// Malloc allocates device memory for this context. On a device with a
// memory or fatal fault it fails with a *FaultError.
func (c *Context) Malloc(n int64) (cuda.DevPtr, error) {
	c.mustLive()
	if err := c.dev.faultFor(XidMemory, XidFatal); err != nil {
		return 0, err
	}
	p, err := c.dev.alloc.Alloc(n)
	if err != nil {
		return 0, err
	}
	rounded, _ := c.dev.alloc.SizeOf(p)
	c.dev.attachBacking(p, rounded)
	return p, nil
}

// MustMalloc is Malloc that panics on out-of-memory.
func (c *Context) MustMalloc(n int64) cuda.DevPtr {
	p, err := c.Malloc(n)
	if err != nil {
		panic(err)
	}
	return p
}

// SizeOf returns the rounded size of a live allocation.
func (c *Context) SizeOf(p cuda.DevPtr) (int64, bool) {
	return c.dev.alloc.SizeOf(p)
}

// Free releases device memory.
func (c *Context) Free(p cuda.DevPtr) error {
	c.mustLive()
	if err := c.dev.alloc.Free(p); err != nil {
		return err
	}
	c.dev.detachBacking(p)
	return nil
}

// HostBuffer is host memory used as a source or destination of transfers.
// Pinned buffers transfer faster and are required for async overlap on
// real hardware; the simulator only differentiates bandwidth.
type HostBuffer struct {
	data   []byte
	size   int64
	pinned bool
}

// AllocHost allocates a host buffer. In timing-only mode no memory is
// reserved.
func (d *Device) AllocHost(n int64, pinned bool) *HostBuffer {
	if n <= 0 {
		panic("gpusim: AllocHost of non-positive size")
	}
	b := &HostBuffer{size: n, pinned: pinned}
	if d.functional {
		b.data = make([]byte, n)
	}
	return b
}

// WrapHost wraps an existing host slice as a (pageable or pinned) buffer.
func WrapHost(data []byte, pinned bool) *HostBuffer {
	return &HostBuffer{data: data, size: int64(len(data)), pinned: pinned}
}

// Size returns the buffer's size in bytes.
func (b *HostBuffer) Size() int64 { return b.size }

// Pinned reports whether the buffer is page-locked.
func (b *HostBuffer) Pinned() bool { return b.pinned }

// Data returns the backing slice (nil in timing-only mode).
func (b *HostBuffer) Data() []byte { return b.data }

// memcpyH2D performs a host-to-device copy on the calling process,
// occupying the H2D engine for the full transfer (transfers in one
// direction never overlap each other, per the paper's model).
func (c *Context) memcpyH2D(p *sim.Proc, dst cuda.DevPtr, src *HostBuffer, off, n int64) {
	c.mustLive()
	if n <= 0 {
		return
	}
	d := c.dev
	if d.exclusive != nil {
		d.exclusive.Acquire(p, 1)
		defer d.exclusive.Release(1)
	}
	d.h2dEngine.Acquire(p, 1)
	start := p.Now()
	p.Sleep(d.arch.TransferTime(n, true, src.pinned))
	if d.functional && src.data != nil {
		copy(d.Bytes(dst, n), src.data[off:off+n])
	}
	d.BytesH2D += n
	d.h2dEngine.Release(1)
	if d.tracer != nil {
		d.emit("h2d", fmt.Sprintf("ctx%d H2D %dB", c.id, n), start, p.Now())
	}
}

// memcpyD2H performs a device-to-host copy on the calling process.
func (c *Context) memcpyD2H(p *sim.Proc, dst *HostBuffer, off int64, src cuda.DevPtr, n int64) {
	c.mustLive()
	if n <= 0 {
		return
	}
	d := c.dev
	if d.exclusive != nil {
		d.exclusive.Acquire(p, 1)
		defer d.exclusive.Release(1)
	}
	d.d2hEngine.Acquire(p, 1)
	start := p.Now()
	p.Sleep(d.arch.TransferTime(n, false, dst.pinned))
	if d.functional && dst.data != nil {
		copy(dst.data[off:off+n], d.Bytes(src, n))
	}
	d.BytesD2H += n
	d.d2hEngine.Release(1)
	if d.tracer != nil {
		d.emit("d2h", fmt.Sprintf("ctx%d D2H %dB", c.id, n), start, p.Now())
	}
}

// MemcpyH2D is the synchronous host-to-device copy.
func (c *Context) MemcpyH2D(p *sim.Proc, dst cuda.DevPtr, src *HostBuffer, n int64) {
	c.memcpyH2D(p, dst, src, 0, n)
}

// MemcpyD2H is the synchronous device-to-host copy.
func (c *Context) MemcpyD2H(p *sim.Proc, dst *HostBuffer, src cuda.DevPtr, n int64) {
	c.memcpyD2H(p, dst, 0, src, n)
}

// Launch runs a kernel synchronously on the calling process: it pays the
// launch overhead, dispatches the kernel to the SM scheduler, and blocks
// until the kernel completes.
func (c *Context) Launch(p *sim.Proc, k *cuda.Kernel) error {
	done, err := c.LaunchAsync(p, k)
	if err != nil {
		return err
	}
	p.Wait(done)
	return nil
}

// LaunchAsync pays the launch overhead on the calling process and enqueues
// the kernel for execution at the default weight; the returned event fires
// at completion.
func (c *Context) LaunchAsync(p *sim.Proc, k *cuda.Kernel) (*sim.Event, error) {
	return c.LaunchAsyncOpts(p, k, LaunchOptions{})
}

// LaunchOptions carries per-launch QoS parameters.
type LaunchOptions struct {
	// Weight is the kernel's share of SM issue throughput relative to
	// co-resident kernels, and its precedence for window admission and
	// wave-boundary preemption. 0 or 1 is the default (all pre-QoS
	// behavior, bit-identical); values are clamped to [1, MaxLaunchWeight].
	Weight int
}

// MaxLaunchWeight bounds per-launch weights so the weight-class metric
// label set stays small and integer arithmetic in the scheduler cannot
// overflow.
const MaxLaunchWeight = 1024

// LaunchAsyncOpts is LaunchAsync with explicit QoS options. On a device
// with a hang or fatal fault the launch fails synchronously with a
// *FaultError; an injector installed via SetFaultInjector is ticked
// first, so a launch may itself trip the fault it then fails with.
func (c *Context) LaunchAsyncOpts(p *sim.Proc, k *cuda.Kernel, o LaunchOptions) (*sim.Event, error) {
	c.mustLive()
	if err := k.Validate(c.dev.arch); err != nil {
		return nil, err
	}
	c.dev.injector.tick(c.dev)
	if err := c.dev.faultFor(XidHang, XidFatal); err != nil {
		return nil, err
	}
	w := o.Weight
	if w < 1 {
		w = 1
	} else if w > MaxLaunchWeight {
		w = MaxLaunchWeight
	}
	d := c.dev
	p.Sleep(d.arch.KernelLaunchOverhead)
	if d.exclusive != nil {
		// Architectures without copy/compute overlap serialize the kernel
		// against transfers: hold the exclusive engine for the duration.
		d.exclusive.Acquire(p, 1)
		done := d.sched.launch(c, k, w)
		release := d.env.NewEvent()
		done.OnFire(func(v any) {
			d.exclusive.Release(1)
			// Forward the payload: an aborted kernel's *FaultError must
			// reach the waiter through the wrapper event too.
			release.Fire(v)
		})
		return release, nil
	}
	return d.sched.launch(c, k, w), nil
}
