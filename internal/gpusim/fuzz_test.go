package gpusim

import (
	"testing"

	"gpuvirt/internal/cuda"
)

// FuzzAllocator drives the allocator with an arbitrary op tape: byte
// 0-159 allocates (size derived from the byte), 160-255 frees a live
// pointer. Invariants must hold after every operation.
func FuzzAllocator(f *testing.F) {
	f.Add([]byte{10, 20, 200, 30, 210, 220})
	f.Add([]byte{0, 0, 0, 160, 160, 160})
	f.Add([]byte{255, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		a := NewAllocator(1<<16, 256)
		var live []cuda.DevPtr
		for i, op := range ops {
			if op >= 160 && len(live) > 0 {
				idx := int(op) % len(live)
				if err := a.Free(live[idx]); err != nil {
					t.Fatalf("op %d: free: %v", i, err)
				}
				live = append(live[:idx], live[idx+1:]...)
			} else {
				size := int64(op)*37 + 1
				p, err := a.Alloc(size)
				if err != nil {
					continue // OOM is fine
				}
				live = append(live, p)
			}
			if err := a.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		for _, p := range live {
			if err := a.Free(p); err != nil {
				t.Fatalf("final free: %v", err)
			}
		}
		if a.InUse() != 0 || a.Allocations() != 0 {
			t.Fatalf("leaked: %d bytes, %d allocations", a.InUse(), a.Allocations())
		}
	})
}
