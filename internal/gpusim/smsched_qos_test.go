package gpusim

import (
	"bytes"
	"fmt"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

// launchQoS launches ks concurrently with per-kernel weights and returns
// the makespan and each kernel's completion time (launch overheads are
// paid serially on the launching process; they are microseconds against
// millisecond kernels).
func launchQoS(t *testing.T, cfg Config, ws []int, ks ...*cuda.Kernel) (makespan sim.Duration, each []sim.Duration, dev *Device) {
	t.Helper()
	env := sim.NewEnv()
	dev = MustNew(env, cfg)
	each = make([]sim.Duration, len(ks))
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		start := p.Now()
		events := make([]*sim.Event, len(ks))
		for i, k := range ks {
			i := i
			ev, err := c.LaunchAsyncOpts(p, k, LaunchOptions{Weight: ws[i]})
			if err != nil {
				t.Errorf("launch %s: %v", k.Name, err)
				return
			}
			ev.OnFire(func(any) { each[i] = env.Now().Sub(start) })
			events[i] = ev
		}
		for _, ev := range events {
			p.Wait(ev)
		}
		makespan = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return makespan, each, dev
}

// batchKernel builds a 256-thread (8-warp) block kernel: six blocks fill
// an SM's 48-warp budget, so co-residents contend for issue throughput.
func batchKernel(name string, blocks int, cycles float64) *cuda.Kernel {
	return &cuda.Kernel{
		Name: name, Grid: cuda.Dim(blocks), Block: cuda.Dim(256),
		CyclesPerThread: cycles,
	}
}

// TestWeightedFairShare41 is the ISSUE's 1:4 property: two device-filling
// kernels at weights 4 and 1 split issue throughput 80/20, so the heavy
// kernel finishes near work/(0.8*capacity) = 1.25x its solo time while
// the light one backfills and lands at the work-conserving 2x mark.
func TestWeightedFairShare41(t *testing.T) {
	arch := fermi.TeslaC2070()
	cfg := Config{Arch: arch}
	const blocks, cycles = 420, 1e5

	_, solo, _ := launchQoS(t, cfg, []int{1}, batchKernel("solo", blocks, cycles))
	_, each, _ := launchQoS(t, cfg, []int{4, 1},
		batchKernel("heavy", blocks, cycles), batchKernel("light", blocks, cycles))

	rh := float64(each[0]) / float64(solo[0])
	rl := float64(each[1]) / float64(solo[0])
	if rh < 1.15 || rh > 1.35 {
		t.Errorf("weight-4 kernel finished at %.3fx solo, want ~1.25x (80%% share)", rh)
	}
	if rl < 1.85 || rl > 2.15 {
		t.Errorf("weight-1 kernel finished at %.3fx solo, want ~2x (work conservation)", rl)
	}

	// Launched second, the heavy kernel must overcome the dispatcher's
	// first-come bias: it idles for the light kernel's first resident
	// wave, then claims its 80% share — (1 + 5/0.8)/5 = 1.45x solo.
	_, rev, _ := launchQoS(t, cfg, []int{1, 4},
		batchKernel("light", blocks, cycles), batchKernel("heavy", blocks, cycles))
	if r := float64(rev[1]) / float64(solo[0]); r < 1.35 || r > 1.6 {
		t.Errorf("weight-4 kernel launched second finished at %.3fx solo, want ~1.45x", r)
	}

	// Control: at equal weights both kernels land near the 2x
	// work-conserving mark (the first launched keeps a modest head start
	// from placement order) — the 1.25x above is the weights at work.
	_, eq, _ := launchQoS(t, cfg, []int{1, 1},
		batchKernel("a", blocks, cycles), batchKernel("b", blocks, cycles))
	for i, e := range eq {
		if r := float64(e) / float64(solo[0]); r < 1.7 || r > 2.1 {
			t.Errorf("equal-weight kernel %d finished at %.3fx solo, want ~1.8-2x", i, r)
		}
	}
}

// TestUniformNonUnitWeightsMatchLegacy: weights only encode ratios, so a
// uniform weight of any magnitude must reproduce the default scheduler
// bit for bit (rates, placement interleave, admission order).
func TestUniformNonUnitWeightsMatchLegacy(t *testing.T) {
	arch := fermi.TeslaC2070()
	mk := func(name string) *cuda.Kernel { return batchKernel(name, 100, 1e5) }
	legacy, le, _ := launchQoS(t, Config{Arch: arch}, []int{1, 1}, mk("a"), mk("b"))
	w3, we, _ := launchQoS(t, Config{Arch: arch}, []int{3, 3}, mk("a"), mk("b"))
	if legacy != w3 || le[0] != we[0] || le[1] != we[1] {
		t.Fatalf("uniform weight 3 diverged from weight 1: makespan %v vs %v, each %v vs %v",
			w3, legacy, we, le)
	}
}

// TestPreemptionExpeditesHighWeight is the preemption regression test:
// with the concurrency window full of batch kernels, a high-weight
// arrival must reach the SMs at the next wave boundary (resident blocks
// drain, nothing is killed), not after a batch kernel fully completes.
func TestPreemptionExpeditesHighWeight(t *testing.T) {
	arch := fermi.TeslaC2070()
	arch.MaxConcurrentKernels = 2
	b1 := batchKernel("batch1", 168, 1e5)
	b2 := batchKernel("batch2", 168, 1e5)
	hot := &cuda.Kernel{
		Name: "hot", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(128),
		CyclesPerThread: 1e5,
	}
	ws := []int{1, 1, 8}

	mkOn, eachOn, devOn := launchQoS(t, Config{Arch: arch}, ws, b1, b2, hot)
	mkOff, eachOff, devOff := launchQoS(t, Config{Arch: arch, PreemptRatio: -1}, ws, b1, b2, hot)

	if devOn.Preemptions() == 0 {
		t.Error("no preemptions recorded with preemption enabled")
	}
	if n := devOff.Preemptions(); n != 0 {
		t.Errorf("preemptions = %d with preemption disabled, want 0", n)
	}
	if r := float64(eachOn[2]) / float64(eachOff[2]); r > 0.5 {
		t.Errorf("preemption cut hot-kernel latency to only %.2fx of disabled (%v vs %v); want < 0.5x",
			r, eachOn[2], eachOff[2])
	}
	// Wave-boundary draining must not cost meaningful batch throughput:
	// the device stays busy while the preempted kernels drain.
	if r := float64(mkOn) / float64(mkOff); r > 1.15 {
		t.Errorf("preemption inflated makespan %.3fx (%v vs %v); want <= 1.15x", r, mkOn, mkOff)
	}
	// Never-kill invariant: every block of every kernel ran exactly once.
	if devOn.KernelsRun != 3 || devOff.KernelsRun != 3 {
		t.Errorf("KernelsRun = %d/%d, want 3/3", devOn.KernelsRun, devOff.KernelsRun)
	}
}

// TestWeightsPreserveFunctionalResults: weights and preemption are pure
// scheduling policy — functional outputs must be byte-identical to a
// serial reference no matter the weight mix, exec parallelism, or
// preemption threshold.
func TestWeightsPreserveFunctionalResults(t *testing.T) {
	arch := fermi.TeslaC2070()
	arch.MaxConcurrentKernels = 2
	arch.MemBytes = 16 << 20
	const n = 1 << 14 // elements per kernel

	run := func(cfg Config, ws []int) []byte {
		env := sim.NewEnv()
		dev := MustNew(env, cfg)
		out := make([]byte, 0, 3*n*4)
		env.Go("main", func(p *sim.Proc) {
			c := dev.CreateContext(p)
			c.Acquire(p)
			defer c.Release()
			bufs := make([]cuda.DevPtr, 3)
			events := make([]*sim.Event, 3)
			for i := range bufs {
				bufs[i] = c.MustMalloc(n * 4)
			}
			for i := range bufs {
				mul := int32(i + 1)
				dst := bufs[i]
				k := &cuda.Kernel{
					Name: fmt.Sprintf("fill%d", i), Grid: cuda.Dim(n / 256), Block: cuda.Dim(256),
					CyclesPerThread: 2e4,
					Args:            []any{dst, n},
					Func: func(bc *cuda.BlockCtx) {
						ov := cuda.Float32s(bc.Mem, bc.Ptr(0), bc.Int(1))
						base := bc.GlobalBase()
						for t := 0; t < bc.BlockDim.X; t++ {
							if i := base + t; i < bc.Int(1) {
								ov[i] = float32(mul) * float32(i)
							}
						}
					},
				}
				ev, err := c.LaunchAsyncOpts(p, k, LaunchOptions{Weight: ws[i]})
				if err != nil {
					t.Errorf("launch: %v", err)
					return
				}
				events[i] = ev
			}
			for _, ev := range events {
				p.Wait(ev)
			}
			host := make([]float32, n)
			for i := range bufs {
				c.MemcpyD2H(p, WrapHost(cuda.HostFloat32Bytes(host), false), bufs[i], n*4)
				out = append(out, cuda.HostFloat32Bytes(host)...)
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	serialRef := run(Config{Arch: arch, Functional: true, ExecWorkers: 1, PreemptRatio: -1}, []int{1, 1, 1})
	cases := []struct {
		name string
		cfg  Config
		ws   []int
	}{
		{"weighted-serial", Config{Arch: arch, Functional: true, ExecWorkers: 1}, []int{1, 1, 8}},
		{"weighted-parallel", Config{Arch: arch, Functional: true}, []int{1, 1, 8}},
		{"inverted-weights", Config{Arch: arch, Functional: true, ExecWorkers: 1}, []int{8, 4, 1}},
	}
	for _, tc := range cases {
		if got := run(tc.cfg, tc.ws); !bytes.Equal(got, serialRef) {
			t.Errorf("%s: outputs differ from serial reference", tc.name)
		}
	}
}

// TestPreemptRatioGate: the threshold is a ratio test, so weight 2 over
// weight 1 preempts at the default ratio 1.0 but not at ratio 3.
func TestPreemptRatioGate(t *testing.T) {
	arch := fermi.TeslaC2070()
	arch.MaxConcurrentKernels = 1
	b := batchKernel("batch", 168, 1e5)
	hot := &cuda.Kernel{
		Name: "hot", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(128),
		CyclesPerThread: 1e5,
	}
	_, _, devLow := launchQoS(t, Config{Arch: arch}, []int{1, 2}, b, hot)
	if devLow.Preemptions() == 0 {
		t.Error("weight 2 did not preempt weight 1 at default ratio 1.0")
	}
	_, _, devHigh := launchQoS(t, Config{Arch: arch, PreemptRatio: 3}, []int{1, 2}, b, hot)
	if n := devHigh.Preemptions(); n != 0 {
		t.Errorf("weight 2 preempted weight 1 at ratio 3 (%d times); want never", n)
	}
}
