package gpusim

import (
	"fmt"
	"math"
	"sort"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

// smScheduler models the device's SM array. Thread blocks of admitted
// kernels are dispatched round-robin across SMs subject to the kernel's
// occupancy limit and the SM's warp/register/shared-memory/block budgets.
// Blocks resident on an SM drain under processor sharing: the SM's issue
// throughput is divided among resident warps, with a per-warp cap that
// models imperfect latency hiding at low occupancy (a lone warp cannot
// saturate an SM).
//
// Compute time is a weighted resource. Every launch carries a weight
// (default 1); when all co-resident kernels share one weight the SM
// drains exactly like classic processor sharing (throughput split over
// warps — bit-identical to the pre-QoS scheduler). When weights differ,
// each SM's issue capacity is divided across kernels in proportion to
// weight by water-filling: a kernel can never absorb more than its own
// warps allow (thr·min(1, warps/LatencyHidingWarps)), and capacity a
// capped kernel leaves behind flows to the others. Block placement
// likewise favors the most underserved kernel per unit weight, so
// steady-state SM residency converges toward the weight ratio.
//
// Wave-boundary preemption: when a higher-weight kernel waits for a
// window slot, lower-weight kernels (by the configured preemption ratio)
// stop receiving new blocks; once such a kernel's resident blocks drain
// (a wave boundary) it vacates its window slot back to the pending queue
// — keeping all completed-block credit — and the preemptor is admitted.
// Resident blocks are never killed, so functional results are
// bit-identical with or without preemption.
//
// Concurrent execution follows Fermi's rules: at most
// Arch.MaxConcurrentKernels kernels are admitted at once, and only kernels
// of the *current* device context can be resident together — the device
// arbiter (Context.Acquire) guarantees cross-context exclusion, so the
// scheduler only ever sees one context's kernels.
type smScheduler struct {
	env  *sim.Env
	dev  *Device
	arch fermi.Arch

	sms     []*smState
	window  int            // kernels currently admitted
	pending []*launchState // waiting for a window slot; admitted by weight, FIFO within a weight
	active  []*launchState // admitted kernels, arrival order
	nextSM  int            // round-robin cursor
	// preemptRatio gates wave-boundary preemption: a pending kernel
	// preempts an active one iff pendingWeight > ratio·activeWeight.
	// <= 0 disables preemption.
	preemptRatio float64
	// groupFree recycles smGroups so a steady stream of small kernels
	// (the daemon's warm ring cycle) does not allocate one per launch.
	groupFree []*smGroup
	// perSMFree recycles the per-kernel resident-block count slices.
	perSMFree [][]int32

	// Scratch buffers reused across reschedules (never escape).
	orderScratch []*launchState
	rateScratch  []float64      // per-group drain rate, indexed like sm.groups
	wfK          []*launchState // distinct kernels on the SM being rated
	wfWarps      []int
	wfBlocks     []int
	wfCap        []float64
	wfRate       []float64
	wfDone       []bool
}

// launchState tracks one in-flight kernel.
type launchState struct {
	ctx         *Context
	k           *cuda.Kernel
	occ         fermi.Occupancy
	weight      int // share of SM issue throughput relative to co-residents
	blockWork   float64
	regsPerBlk  int
	shmemPerBlk int

	blocksLeft int // not yet dispatched
	blocksDone int
	total      int
	// perSM[i] counts this kernel's blocks resident on SM i, so the
	// per-kernel occupancy check in fits is O(1) instead of a rescan of
	// the SM's group list per placement.
	perSM []int32
	// inhibited marks a kernel being preempted: its resident blocks
	// drain but no new blocks are placed until the preemptor is served.
	inhibited bool
	// deficit banks placement credit for weighted deficit round-robin:
	// each dispatch pass deposits weight and each placed block spends the
	// pass's minimum active weight, so placement interleaves in weight
	// proportion (uniform weights degenerate to the legacy one block per
	// kernel per pass). Reset when the kernel cannot place, so credit
	// never banks across scarcity.
	deficit int

	start       sim.Time
	memFloorEnd sim.Time
	done        *sim.Event
}

// resident returns how many of the kernel's blocks currently occupy SMs.
func (ls *launchState) resident() int { return ls.total - ls.blocksDone - ls.blocksLeft }

// smState is one streaming multiprocessor.
type smState struct {
	idx        int
	usedWarps  int
	usedRegs   int
	usedShmem  int
	usedBlocks int
	groups     []*smGroup
	lastUpdate sim.Time
	timerGen   uint64
	// freshFrom marks where this dispatch pass's new groups begin in
	// groups, so same-instant placements of one kernel merge without a
	// scratch map.
	freshFrom int
}

// smGroup is a set of identical blocks of one kernel that started together
// on one SM; they drain at the same rate and complete together.
type smGroup struct {
	ls      *launchState
	blocks  int
	warps   int // total warps held by the group
	regs    int
	shmem   int
	remWork float64 // remaining lane-cycles per block
}

func newSMScheduler(env *sim.Env, dev *Device) *smScheduler {
	s := &smScheduler{env: env, dev: dev, arch: dev.arch, preemptRatio: dev.preemptRatio}
	s.sms = make([]*smState, dev.arch.SMs)
	for i := range s.sms {
		s.sms[i] = &smState{idx: i}
	}
	return s
}

// launch registers a kernel for execution and returns its completion
// event. The caller has already paid the launch overhead and normalized
// the weight to >= 1.
func (s *smScheduler) launch(ctx *Context, k *cuda.Kernel, weight int) *sim.Event {
	occ, err := s.arch.Occupancy(k.Resources())
	if err != nil {
		// Validate is called before launch; reaching here is a bug.
		panic(fmt.Sprintf("gpusim: launch of invalid kernel %q: %v", k.Name, err))
	}
	warpsPerBlock := occ.WarpsPerBlock
	regsPerWarp := 0
	if k.RegsPerThread > 0 {
		regsPerWarp = ((k.RegsPerThread*s.arch.WarpSize + s.arch.RegAllocUnit - 1) /
			s.arch.RegAllocUnit) * s.arch.RegAllocUnit
	}
	shm := k.SharedMemPerBlock
	if shm > 0 && s.arch.SharedAllocUnit > 1 {
		shm = (shm + s.arch.SharedAllocUnit - 1) / s.arch.SharedAllocUnit * s.arch.SharedAllocUnit
	}
	ls := &launchState{
		ctx:         ctx,
		k:           k,
		occ:         occ,
		weight:      weight,
		blockWork:   float64(k.Block.Count()) * k.CyclesPerThread,
		regsPerBlk:  regsPerWarp * warpsPerBlock,
		shmemPerBlk: shm,
		blocksLeft:  k.Blocks(),
		total:       k.Blocks(),
		perSM:       s.takePerSM(),
		start:       s.env.Now(),
		done:        s.env.NewEvent(),
	}
	if mem := k.TotalMemBytes(); mem > 0 && s.arch.MemBandwidth > 0 {
		ls.memFloorEnd = ls.start.Add(sim.Duration(mem / s.arch.MemBandwidth * 1e9))
	}
	if s.window < s.arch.MaxConcurrentKernels {
		s.admit(ls)
	} else {
		s.pending = append(s.pending, ls)
	}
	s.reschedule()
	return ls.done
}

func (s *smScheduler) admit(ls *launchState) {
	s.window++
	s.active = append(s.active, ls)
}

// admitNext fills one free window slot with the highest-weight pending
// kernel (FIFO among equals, so uniform-weight runs admit in arrival
// order exactly like the pre-QoS scheduler).
func (s *smScheduler) admitNext() {
	if len(s.pending) == 0 || s.window >= s.arch.MaxConcurrentKernels {
		return
	}
	best := 0
	for i, ls := range s.pending {
		if ls.weight > s.pending[best].weight {
			best = i
		}
	}
	next := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	// A kernel re-admitted after demotion must not carry banked placement
	// credit from its previous residency.
	next.deficit = 0
	s.admit(next)
}

func (s *smScheduler) takePerSM() []int32 {
	if n := len(s.perSMFree); n > 0 {
		p := s.perSMFree[n-1]
		s.perSMFree[n-1] = nil
		s.perSMFree = s.perSMFree[:n-1]
		return p
	}
	return make([]int32, len(s.sms))
}

func (s *smScheduler) releasePerSM(ls *launchState) {
	p := ls.perSM
	ls.perSM = nil
	if p == nil || len(s.perSMFree) >= 32 {
		return
	}
	for i := range p {
		p[i] = 0
	}
	s.perSMFree = append(s.perSMFree, p)
}

// advanceAll drains every SM's groups up to the current instant.
func (s *smScheduler) advanceAll() {
	now := s.env.Now()
	for _, sm := range s.sms {
		dt := now.Sub(sm.lastUpdate).Seconds()
		sm.lastUpdate = now
		if dt <= 0 || len(sm.groups) == 0 {
			continue
		}
		rates := s.groupRates(sm)
		for i, g := range sm.groups {
			g.remWork -= rates[i] * dt
			if g.remWork < 0 {
				g.remWork = 0
			}
		}
	}
}

// denom is the warp-sharing denominator: resident warps, floored at the
// latency-hiding threshold (an under-occupied SM cannot use all issue
// slots).
func (s *smScheduler) denom(sm *smState) float64 {
	d := float64(sm.usedWarps)
	if lh := float64(s.arch.LatencyHidingWarps); d < lh {
		d = lh
	}
	if d == 0 {
		d = 1
	}
	return d
}

// perBlockRate returns the lane-cycles/second each block of group g drains
// at, given the SM sharing denominator.
func (s *smScheduler) perBlockRate(g *smGroup, denom float64) float64 {
	throughput := float64(s.arch.CoresPerSM) * s.arch.ClockHz // lane-cycles/s
	warpsPerBlock := float64(g.warps) / float64(g.blocks)
	return throughput * warpsPerBlock / denom
}

// groupRates returns the per-block drain rate of every group on sm, in
// group order (the slice is scheduler scratch, valid until the next
// call). When all resident kernels share one weight this is classic
// processor sharing over warps, evaluated with exactly the pre-QoS float
// operations so uniform-weight runs are bit-identical. With mixed
// weights the SM's issue capacity is water-filled across kernels in
// proportion to weight, each kernel capped at what its resident warps
// can absorb through the latency-hiding floor.
func (s *smScheduler) groupRates(sm *smState) []float64 {
	rates := s.rateScratch[:0]
	uniform := true
	for _, g := range sm.groups[1:] {
		if g.ls.weight != sm.groups[0].ls.weight {
			uniform = false
			break
		}
	}
	if uniform {
		denom := s.denom(sm)
		for _, g := range sm.groups {
			rates = append(rates, s.perBlockRate(g, denom))
		}
		s.rateScratch = rates
		return rates
	}

	// Gather distinct kernels with their total warps/blocks on this SM.
	ks, warps, blocks := s.wfK[:0], s.wfWarps[:0], s.wfBlocks[:0]
	for _, g := range sm.groups {
		found := false
		for i, ls := range ks {
			if ls == g.ls {
				warps[i] += g.warps
				blocks[i] += g.blocks
				found = true
				break
			}
		}
		if !found {
			ks = append(ks, g.ls)
			warps = append(warps, g.warps)
			blocks = append(blocks, g.blocks)
		}
	}

	thr := float64(s.arch.CoresPerSM) * s.arch.ClockHz
	lh := float64(s.arch.LatencyHidingWarps)
	// Total SM capacity equals the aggregate of classic processor
	// sharing: thr·min(1, usedWarps/LH).
	capacity := thr
	if uw := float64(sm.usedWarps); uw < lh {
		capacity = thr * uw / lh
	}
	caps, kRate, done := s.wfCap[:0], s.wfRate[:0], s.wfDone[:0]
	for i := range ks {
		c := thr
		if w := float64(warps[i]); w < lh {
			c = thr * w / lh
		}
		caps = append(caps, c)
		kRate = append(kRate, 0)
		done = append(done, false)
	}
	// Water-fill: give each kernel capacity ∝ weight; kernels that would
	// exceed their absorption cap are clamped and the remainder is
	// redistributed. Σcaps >= capacity always, so this terminates with
	// the capacity fully (or maximally) assigned, deterministically.
	remC := capacity
	for {
		sumW := 0
		for i := range ks {
			if !done[i] {
				sumW += ks[i].weight
			}
		}
		if sumW == 0 {
			break
		}
		changed := false
		for i := range ks {
			if done[i] {
				continue
			}
			if remC*float64(ks[i].weight) >= caps[i]*float64(sumW) {
				kRate[i] = caps[i]
				remC -= caps[i]
				done[i] = true
				changed = true
			}
		}
		if !changed {
			for i := range ks {
				if !done[i] {
					kRate[i] = remC * float64(ks[i].weight) / float64(sumW)
				}
			}
			break
		}
	}
	for _, g := range sm.groups {
		for i, ls := range ks {
			if ls == g.ls {
				rates = append(rates, kRate[i]/float64(blocks[i]))
				break
			}
		}
	}
	s.rateScratch = rates
	s.wfK, s.wfWarps, s.wfBlocks = ks, warps, blocks
	s.wfCap, s.wfRate, s.wfDone = caps, kRate, done
	return rates
}

// reschedule is called after any state change: it collects finished
// groups, dispatches new blocks, and re-arms each SM's next-completion
// timer. It must run with SMs already advanced to now (callers go through
// onEvent or the launch path, which advance first).
func (s *smScheduler) reschedule() {
	s.advanceAll()
	s.collectFinished()
	s.dispatch()
	s.armTimers()
}

// collectFinished removes drained groups, credits their kernels, fires
// completion events and opens window slots.
func (s *smScheduler) collectFinished() {
	for _, sm := range s.sms {
		kept := sm.groups[:0]
		for _, g := range sm.groups {
			// Half a lane-cycle of residual work (sub-nanosecond) counts
			// as done; it absorbs float rounding in the rate integration.
			if g.remWork > 0.5 && g.ls.blockWork > 0 {
				kept = append(kept, g)
				continue
			}
			sm.usedWarps -= g.warps
			sm.usedRegs -= g.regs
			sm.usedShmem -= g.shmem
			sm.usedBlocks -= g.blocks
			ls := g.ls
			ls.blocksDone += g.blocks
			ls.perSM[sm.idx] -= int32(g.blocks)
			*g = smGroup{}
			if len(s.groupFree) < 32 {
				s.groupFree = append(s.groupFree, g)
			}
			if ls.blocksDone == ls.total {
				s.finish(ls)
			}
		}
		sm.groups = kept
	}
}

// finish completes a kernel: runs its functional body (in functional
// mode), honors the memory-bandwidth floor, fires done, frees the window
// slot and admits the next pending kernel.
func (s *smScheduler) finish(ls *launchState) {
	for i, a := range s.active {
		if a == ls {
			s.finishAt(ls, i)
			return
		}
	}
	panic(fmt.Sprintf("gpusim: finish of kernel %q not in active set", ls.k.Name))
}

// finishAt is finish when the caller already knows the kernel's index in
// s.active.
func (s *smScheduler) finishAt(ls *launchState, i int) {
	s.window--
	s.active = append(s.active[:i], s.active[i+1:]...)
	s.releasePerSM(ls)
	s.admitNext()
	s.dev.KernelsRun++
	if s.env.Now() < ls.memFloorEnd {
		s.env.At(ls.memFloorEnd, func() { s.fireLaunch(ls) })
	} else {
		s.fireLaunch(ls)
	}
}

// fireLaunch runs the kernel's functional body (in functional mode) and
// fires its completion event; it is finish's tail, split out so the
// common no-memory-floor case pays no closure.
func (s *smScheduler) fireLaunch(ls *launchState) {
	if s.dev.functional && ls.k.Func != nil {
		// Device.Bytes only reads the allocation table, so concurrent
		// block bodies may resolve pointers safely while they write
		// their disjoint output ranges.
		if err := s.dev.exec.Run(ls.k, s.dev); err != nil {
			panic(err)
		}
	}
	if s.dev.tracing() {
		s.dev.emit("sm", fmt.Sprintf("ctx%d kernel %s", ls.ctx.id, ls.k.Name), ls.start, s.env.Now())
	}
	ls.done.Fire(nil)
}

// abortAll kills every in-flight kernel (hang/fatal fault injection):
// resident blocks are discarded, SM budgets returned, the window and
// pending queue emptied, and each kernel's done event fires with err as
// its payload — no functional body runs and no KernelsRun credit is
// given, so waiters observe the fault instead of a silent success.
func (s *smScheduler) abortAll(err error) {
	s.advanceAll()
	for _, sm := range s.sms {
		for _, g := range sm.groups {
			sm.usedWarps -= g.warps
			sm.usedRegs -= g.regs
			sm.usedShmem -= g.shmem
			sm.usedBlocks -= g.blocks
			*g = smGroup{}
			if len(s.groupFree) < 32 {
				s.groupFree = append(s.groupFree, g)
			}
		}
		sm.groups = sm.groups[:0]
		sm.freshFrom = 0
		sm.timerGen++ // invalidate armed completion timers
	}
	aborted := append(append([]*launchState(nil), s.active...), s.pending...)
	s.active = s.active[:0]
	s.pending = s.pending[:0]
	s.window = 0
	for _, ls := range aborted {
		s.releasePerSM(ls)
		ls.done.Fire(err)
	}
}

// preempt implements wave-boundary preemption. While a pending kernel
// outweighs an active one by more than the preemption ratio, the active
// kernel stops receiving new blocks (inhibited); once its resident
// blocks have drained it returns to the pending queue — retaining every
// completed block — and its window slot goes to the preemptor. Progress
// is guaranteed: only strictly higher-weight pending kernels inhibit, so
// the demoted kernel resumes as soon as the preemptor's weight class
// drains from the window.
func (s *smScheduler) preempt() {
	for _, ls := range s.active {
		ls.inhibited = false
	}
	if s.preemptRatio <= 0 {
		return
	}
	for {
		// maxW must be recomputed after every demotion: demoting admits a
		// pending kernel (usually the preemptor itself), and judging the
		// remaining actives against the pre-admission queue would demote
		// kernels whose preemptor is already in the window — two equal-weight
		// kernels would then swap between active and pending forever at one
		// virtual instant.
		maxW := 0
		for _, ls := range s.pending {
			if ls.weight > maxW {
				maxW = ls.weight
			}
		}
		demoted := false
		for i := 0; i < len(s.active); i++ {
			ls := s.active[i]
			// A kernel yields its slot only to a strictly heavier pending
			// kernel past the ratio threshold; the strict half of the test
			// means every demotion raises the window's total weight, so this
			// loop terminates for any ratio.
			if maxW <= ls.weight || float64(maxW) <= s.preemptRatio*float64(ls.weight) {
				// Also undoes inhibition from an earlier round whose
				// preemptor has been admitted by now.
				ls.inhibited = false
				continue
			}
			if ls.resident() > 0 || ls.blocksLeft == 0 {
				// Mid-wave (or fully dispatched): let resident blocks
				// drain, place nothing new.
				ls.inhibited = true
				continue
			}
			s.active = append(s.active[:i], s.active[i+1:]...)
			s.window--
			ls.inhibited = false
			s.pending = append(s.pending, ls)
			s.dev.preemptions.Add(1)
			s.admitNext()
			demoted = true
			break
		}
		if !demoted {
			return
		}
	}
}

// dispatchOrder returns the order in which active kernels claim SM block
// slots this pass. With uniform weights it is s.active itself (arrival
// order — bit-identical to the pre-QoS scheduler). With mixed weights,
// kernels are ordered by weight-normalized residency (fewest resident
// blocks per unit weight first, stable by arrival among ties), so scarce
// slots go to the most underserved kernel and steady-state residency
// converges toward the weight ratio.
func (s *smScheduler) dispatchOrder() []*launchState {
	uniform := true
	for _, ls := range s.active {
		if ls.weight != s.active[0].weight {
			uniform = false
			break
		}
	}
	if uniform {
		return s.active
	}
	order := append(s.orderScratch[:0], s.active...)
	s.orderScratch = order
	sort.SliceStable(order, func(a, b int) bool {
		// resident_a/weight_a < resident_b/weight_b, cross-multiplied to
		// stay in exact integer arithmetic.
		return int64(order[a].resident())*int64(order[b].weight) <
			int64(order[b].resident())*int64(order[a].weight)
	})
	return order
}

// completeZeroWork finishes active kernels whose blocks carry no work:
// they complete without occupying hardware. finishAt removes index i in
// place and any kernel it admits from the pending queue is appended to
// s.active, so one forward pass visits everything — no restart-rescan.
func (s *smScheduler) completeZeroWork() {
	for i := 0; i < len(s.active); {
		ls := s.active[i]
		if ls.blocksLeft > 0 && ls.blockWork <= 0 {
			ls.blocksDone += ls.blocksLeft
			ls.blocksLeft = 0
			s.finishAt(ls, i)
			continue
		}
		i++
	}
}

// dispatch places undispatched blocks onto SMs: kernels in weighted
// order, SMs round-robin, one block per kernel per pass, merging
// same-instant placements of one kernel on one SM into a single group.
func (s *smScheduler) dispatch() {
	for _, sm := range s.sms {
		sm.freshFrom = len(sm.groups)
	}
	s.completeZeroWork()
	s.preempt()
	// preempt's demotions admit pending kernels; a zero-work kernel
	// admitted that way can never be placed (the placement loop skips
	// blockWork <= 0), so it must be completed here or its waiter
	// deadlocks with an empty calendar.
	s.completeZeroWork()
	for {
		// Deficit round-robin: each pass deposits weight into every
		// placeable kernel's credit and a placed block costs the pass's
		// minimum weight, so placement interleaves in weight proportion
		// (4:1 weights place 4 blocks per pass against 1). With uniform
		// weights every quota is exactly one block, which reproduces the
		// legacy one-block-per-kernel interleave bit for bit.
		minW := 0
		for _, ls := range s.active {
			if ls.blocksLeft == 0 || ls.blockWork <= 0 || ls.inhibited {
				continue
			}
			if minW == 0 || ls.weight < minW {
				minW = ls.weight
			}
		}
		if minW == 0 {
			return
		}
		placed := false
		for _, ls := range s.dispatchOrder() {
			if ls.blocksLeft == 0 || ls.blockWork <= 0 || ls.inhibited {
				continue
			}
			ls.deficit += ls.weight
			for ls.deficit >= minW && ls.blocksLeft > 0 {
				if !s.placeOne(ls) {
					// No SM fits: drop banked credit so it cannot burst
					// later and starve lighter kernels when slots free up.
					ls.deficit = 0
					break
				}
				ls.deficit -= minW
				placed = true
			}
		}
		if !placed {
			return
		}
	}
}

// placeOne places one block of ls on the first SM (round-robin from
// nextSM) with room, and reports whether it found one.
func (s *smScheduler) placeOne(ls *launchState) bool {
	for try := 0; try < len(s.sms); try++ {
		sm := s.sms[s.nextSM]
		s.nextSM = (s.nextSM + 1) % len(s.sms)
		if !s.fits(sm, ls) {
			continue
		}
		var g *smGroup
		for _, fg := range sm.groups[sm.freshFrom:] {
			if fg.ls == ls {
				g = fg
				break
			}
		}
		if g == nil {
			if n := len(s.groupFree); n > 0 {
				g = s.groupFree[n-1]
				s.groupFree[n-1] = nil
				s.groupFree = s.groupFree[:n-1]
			} else {
				g = &smGroup{}
			}
			g.ls = ls
			g.remWork = ls.blockWork
			sm.groups = append(sm.groups, g)
		}
		g.blocks++
		g.warps += ls.occ.WarpsPerBlock
		g.regs += ls.regsPerBlk
		g.shmem += ls.shmemPerBlk
		sm.usedWarps += ls.occ.WarpsPerBlock
		sm.usedRegs += ls.regsPerBlk
		sm.usedShmem += ls.shmemPerBlk
		sm.usedBlocks++
		ls.perSM[sm.idx]++
		ls.blocksLeft--
		return true
	}
	return false
}

// fits reports whether one more block of ls fits on sm.
func (s *smScheduler) fits(sm *smState, ls *launchState) bool {
	if sm.usedBlocks+1 > s.arch.MaxBlocksPerSM {
		return false
	}
	if sm.usedWarps+ls.occ.WarpsPerBlock > s.arch.MaxWarpsPerSM {
		return false
	}
	if sm.usedRegs+ls.regsPerBlk > s.arch.RegsPerSM {
		return false
	}
	if sm.usedShmem+ls.shmemPerBlk > s.arch.SharedMemPerSM {
		return false
	}
	// Per-kernel occupancy limit on this SM, tracked incrementally.
	return int(ls.perSM[sm.idx])+1 <= ls.occ.BlocksPerSM
}

// armTimers schedules each SM's next group completion.
func (s *smScheduler) armTimers() {
	for _, sm := range s.sms {
		sm.timerGen++
		if len(sm.groups) == 0 {
			continue
		}
		rates := s.groupRates(sm)
		next := math.Inf(1)
		for i, g := range sm.groups {
			rate := rates[i]
			if rate <= 0 {
				continue
			}
			if t := g.remWork / rate; t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			continue
		}
		gen := sm.timerGen
		smRef := sm
		s.env.After(sim.Duration(next*1e9)+1, func() {
			if smRef.timerGen != gen {
				return
			}
			s.reschedule()
		})
	}
}

// Utilization returns the fraction of SM block slots currently occupied,
// for tests and reporting.
func (s *smScheduler) Utilization() float64 {
	used, total := 0, 0
	for _, sm := range s.sms {
		used += sm.usedBlocks
		total += s.arch.MaxBlocksPerSM
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}
