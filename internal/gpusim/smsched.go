package gpusim

import (
	"fmt"
	"math"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

// smScheduler models the device's SM array. Thread blocks of admitted
// kernels are dispatched round-robin across SMs subject to the kernel's
// occupancy limit and the SM's warp/register/shared-memory/block budgets.
// Blocks resident on an SM drain under processor sharing: the SM's issue
// throughput is divided among resident warps, with a per-warp cap that
// models imperfect latency hiding at low occupancy (a lone warp cannot
// saturate an SM).
//
// Concurrent execution follows Fermi's rules: at most
// Arch.MaxConcurrentKernels kernels are admitted at once, and only kernels
// of the *current* device context can be resident together — the device
// arbiter (Context.Acquire) guarantees cross-context exclusion, so the
// scheduler only ever sees one context's kernels.
type smScheduler struct {
	env  *sim.Env
	dev  *Device
	arch fermi.Arch

	sms     []*smState
	window  int            // kernels currently admitted
	pending []*launchState // waiting for a window slot, FIFO
	active  []*launchState // admitted kernels, FIFO dispatch priority
	nextSM  int            // round-robin cursor
	// groupFree recycles smGroups so a steady stream of small kernels
	// (the daemon's warm ring cycle) does not allocate one per launch.
	groupFree []*smGroup
}

// launchState tracks one in-flight kernel.
type launchState struct {
	ctx         *Context
	k           *cuda.Kernel
	occ         fermi.Occupancy
	blockWork   float64 // lane-cycles per block
	regsPerBlk  int
	shmemPerBlk int

	blocksLeft int // not yet dispatched
	blocksDone int
	total      int

	start       sim.Time
	memFloorEnd sim.Time
	done        *sim.Event
}

// smState is one streaming multiprocessor.
type smState struct {
	idx        int
	usedWarps  int
	usedRegs   int
	usedShmem  int
	usedBlocks int
	groups     []*smGroup
	lastUpdate sim.Time
	timerGen   uint64
	// freshFrom marks where this dispatch pass's new groups begin in
	// groups, so same-instant placements of one kernel merge without a
	// scratch map.
	freshFrom int
}

// smGroup is a set of identical blocks of one kernel that started together
// on one SM; they drain at the same rate and complete together.
type smGroup struct {
	ls      *launchState
	blocks  int
	warps   int // total warps held by the group
	regs    int
	shmem   int
	remWork float64 // remaining lane-cycles per block
}

func newSMScheduler(env *sim.Env, dev *Device) *smScheduler {
	s := &smScheduler{env: env, dev: dev, arch: dev.arch}
	s.sms = make([]*smState, dev.arch.SMs)
	for i := range s.sms {
		s.sms[i] = &smState{idx: i}
	}
	return s
}

// launch registers a kernel for execution and returns its completion
// event. The caller has already paid the launch overhead.
func (s *smScheduler) launch(ctx *Context, k *cuda.Kernel) *sim.Event {
	occ, err := s.arch.Occupancy(k.Resources())
	if err != nil {
		// Validate is called before launch; reaching here is a bug.
		panic(fmt.Sprintf("gpusim: launch of invalid kernel %q: %v", k.Name, err))
	}
	warpsPerBlock := occ.WarpsPerBlock
	regsPerWarp := 0
	if k.RegsPerThread > 0 {
		regsPerWarp = ((k.RegsPerThread*s.arch.WarpSize + s.arch.RegAllocUnit - 1) /
			s.arch.RegAllocUnit) * s.arch.RegAllocUnit
	}
	shm := k.SharedMemPerBlock
	if shm > 0 && s.arch.SharedAllocUnit > 1 {
		shm = (shm + s.arch.SharedAllocUnit - 1) / s.arch.SharedAllocUnit * s.arch.SharedAllocUnit
	}
	ls := &launchState{
		ctx:         ctx,
		k:           k,
		occ:         occ,
		blockWork:   float64(k.Block.Count()) * k.CyclesPerThread,
		regsPerBlk:  regsPerWarp * warpsPerBlock,
		shmemPerBlk: shm,
		blocksLeft:  k.Blocks(),
		total:       k.Blocks(),
		start:       s.env.Now(),
		done:        s.env.NewEvent(),
	}
	if mem := k.TotalMemBytes(); mem > 0 && s.arch.MemBandwidth > 0 {
		ls.memFloorEnd = ls.start.Add(sim.Duration(mem / s.arch.MemBandwidth * 1e9))
	}
	if s.window < s.arch.MaxConcurrentKernels {
		s.admit(ls)
	} else {
		s.pending = append(s.pending, ls)
	}
	s.reschedule()
	return ls.done
}

func (s *smScheduler) admit(ls *launchState) {
	s.window++
	s.active = append(s.active, ls)
}

// advanceAll drains every SM's groups up to the current instant.
func (s *smScheduler) advanceAll() {
	now := s.env.Now()
	for _, sm := range s.sms {
		dt := now.Sub(sm.lastUpdate).Seconds()
		sm.lastUpdate = now
		if dt <= 0 || len(sm.groups) == 0 {
			continue
		}
		denom := s.denom(sm)
		for _, g := range sm.groups {
			g.remWork -= s.perBlockRate(g, denom) * dt
			if g.remWork < 0 {
				g.remWork = 0
			}
		}
	}
}

// denom is the warp-sharing denominator: resident warps, floored at the
// latency-hiding threshold (an under-occupied SM cannot use all issue
// slots).
func (s *smScheduler) denom(sm *smState) float64 {
	d := float64(sm.usedWarps)
	if lh := float64(s.arch.LatencyHidingWarps); d < lh {
		d = lh
	}
	if d == 0 {
		d = 1
	}
	return d
}

// perBlockRate returns the lane-cycles/second each block of group g drains
// at, given the SM sharing denominator.
func (s *smScheduler) perBlockRate(g *smGroup, denom float64) float64 {
	throughput := float64(s.arch.CoresPerSM) * s.arch.ClockHz // lane-cycles/s
	warpsPerBlock := float64(g.warps) / float64(g.blocks)
	return throughput * warpsPerBlock / denom
}

// reschedule is called after any state change: it collects finished
// groups, dispatches new blocks, and re-arms each SM's next-completion
// timer. It must run with SMs already advanced to now (callers go through
// onEvent or the launch path, which advance first).
func (s *smScheduler) reschedule() {
	s.advanceAll()
	s.collectFinished()
	s.dispatch()
	s.armTimers()
}

// collectFinished removes drained groups, credits their kernels, fires
// completion events and opens window slots.
func (s *smScheduler) collectFinished() {
	for _, sm := range s.sms {
		kept := sm.groups[:0]
		for _, g := range sm.groups {
			// Half a lane-cycle of residual work (sub-nanosecond) counts
			// as done; it absorbs float rounding in the rate integration.
			if g.remWork > 0.5 && g.ls.blockWork > 0 {
				kept = append(kept, g)
				continue
			}
			sm.usedWarps -= g.warps
			sm.usedRegs -= g.regs
			sm.usedShmem -= g.shmem
			sm.usedBlocks -= g.blocks
			ls := g.ls
			ls.blocksDone += g.blocks
			*g = smGroup{}
			if len(s.groupFree) < 32 {
				s.groupFree = append(s.groupFree, g)
			}
			if ls.blocksDone == ls.total {
				s.finish(ls)
			}
		}
		sm.groups = kept
	}
}

// finish completes a kernel: runs its functional body (in functional
// mode), honors the memory-bandwidth floor, fires done, frees the window
// slot and admits the next pending kernel.
func (s *smScheduler) finish(ls *launchState) {
	s.window--
	for i, a := range s.active {
		if a == ls {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	if len(s.pending) > 0 {
		next := s.pending[0]
		s.pending = s.pending[1:]
		s.admit(next)
	}
	s.dev.KernelsRun++
	if s.env.Now() < ls.memFloorEnd {
		s.env.At(ls.memFloorEnd, func() { s.fireLaunch(ls) })
	} else {
		s.fireLaunch(ls)
	}
}

// fireLaunch runs the kernel's functional body (in functional mode) and
// fires its completion event; it is finish's tail, split out so the
// common no-memory-floor case pays no closure.
func (s *smScheduler) fireLaunch(ls *launchState) {
	if s.dev.functional && ls.k.Func != nil {
		// Device.Bytes only reads the allocation table, so concurrent
		// block bodies may resolve pointers safely while they write
		// their disjoint output ranges.
		if err := s.dev.exec.Run(ls.k, s.dev); err != nil {
			panic(err)
		}
	}
	if s.dev.tracing() {
		s.dev.emit("sm", fmt.Sprintf("ctx%d kernel %s", ls.ctx.id, ls.k.Name), ls.start, s.env.Now())
	}
	ls.done.Fire(nil)
}

// dispatch places undispatched blocks onto SMs: kernels in FIFO order,
// SMs round-robin, one block at a time, merging same-instant placements
// of one kernel on one SM into a single group.
func (s *smScheduler) dispatch() {
	for _, sm := range s.sms {
		sm.freshFrom = len(sm.groups)
	}
	for {
		// Zero-work kernels complete without occupying hardware. finish
		// mutates s.active (and may admit pending kernels), so restart the
		// scan after each one.
		for again := true; again; {
			again = false
			for _, ls := range s.active {
				if ls.blocksLeft > 0 && ls.blockWork <= 0 {
					ls.blocksDone += ls.blocksLeft
					ls.blocksLeft = 0
					s.finish(ls)
					again = true
					break
				}
			}
		}
		placed := false
		for _, ls := range s.active {
			if ls.blocksLeft == 0 || ls.blockWork <= 0 {
				continue
			}
			for try := 0; try < len(s.sms); try++ {
				sm := s.sms[s.nextSM]
				s.nextSM = (s.nextSM + 1) % len(s.sms)
				if !s.fits(sm, ls) {
					continue
				}
				var g *smGroup
				for _, fg := range sm.groups[sm.freshFrom:] {
					if fg.ls == ls {
						g = fg
						break
					}
				}
				if g == nil {
					if n := len(s.groupFree); n > 0 {
						g = s.groupFree[n-1]
						s.groupFree[n-1] = nil
						s.groupFree = s.groupFree[:n-1]
					} else {
						g = &smGroup{}
					}
					g.ls = ls
					g.remWork = ls.blockWork
					sm.groups = append(sm.groups, g)
				}
				g.blocks++
				g.warps += ls.occ.WarpsPerBlock
				g.regs += ls.regsPerBlk
				g.shmem += ls.shmemPerBlk
				sm.usedWarps += ls.occ.WarpsPerBlock
				sm.usedRegs += ls.regsPerBlk
				sm.usedShmem += ls.shmemPerBlk
				sm.usedBlocks++
				ls.blocksLeft--
				placed = true
				break
			}
		}
		if !placed {
			return
		}
	}
}

// fits reports whether one more block of ls fits on sm.
func (s *smScheduler) fits(sm *smState, ls *launchState) bool {
	if sm.usedBlocks+1 > s.arch.MaxBlocksPerSM {
		return false
	}
	if sm.usedWarps+ls.occ.WarpsPerBlock > s.arch.MaxWarpsPerSM {
		return false
	}
	if sm.usedRegs+ls.regsPerBlk > s.arch.RegsPerSM {
		return false
	}
	if sm.usedShmem+ls.shmemPerBlk > s.arch.SharedMemPerSM {
		return false
	}
	// Per-kernel occupancy limit on this SM.
	mine := 0
	for _, g := range sm.groups {
		if g.ls == ls {
			mine += g.blocks
		}
	}
	return mine+1 <= ls.occ.BlocksPerSM
}

// armTimers schedules each SM's next group completion.
func (s *smScheduler) armTimers() {
	for _, sm := range s.sms {
		sm.timerGen++
		if len(sm.groups) == 0 {
			continue
		}
		denom := s.denom(sm)
		next := math.Inf(1)
		for _, g := range sm.groups {
			rate := s.perBlockRate(g, denom)
			if rate <= 0 {
				continue
			}
			if t := g.remWork / rate; t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			continue
		}
		gen := sm.timerGen
		smRef := sm
		s.env.After(sim.Duration(next*1e9)+1, func() {
			if smRef.timerGen != gen {
				return
			}
			s.reschedule()
		})
	}
}

// Utilization returns the fraction of SM block slots currently occupied,
// for tests and reporting.
func (s *smScheduler) Utilization() float64 {
	used, total := 0, 0
	for _, sm := range s.sms {
		used += sm.usedBlocks
		total += s.arch.MaxBlocksPerSM
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}
