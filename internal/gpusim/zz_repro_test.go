package gpusim

import (
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

// Repro: a heavier zero-work kernel pending behind a lighter multi-wave
// kernel. At the light kernel's wave boundary, preempt demotes it and
// admits the zero-work kernel after the zero-work drain pass already ran.
func TestReproZeroWorkPreempt(t *testing.T) {
	arch := fermi.TeslaC2070()
	arch.MaxConcurrentKernels = 1
	env := sim.NewEnv()
	dev := MustNew(env, Config{Arch: arch})
	var doneA, doneZ bool
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		a := &cuda.Kernel{Name: "light", Grid: cuda.Dim(420), Block: cuda.Dim(256), CyclesPerThread: 1e5}
		z := &cuda.Kernel{Name: "heavyzero", Grid: cuda.Dim(4), Block: cuda.Dim(256), CyclesPerThread: 0}
		evA, err := c.LaunchAsyncOpts(p, a, LaunchOptions{Weight: 1})
		if err != nil {
			t.Errorf("launch a: %v", err)
			return
		}
		evZ, err := c.LaunchAsyncOpts(p, z, LaunchOptions{Weight: 4})
		if err != nil {
			t.Errorf("launch z: %v", err)
			return
		}
		p.Wait(evZ)
		doneZ = true
		p.Wait(evA)
		doneA = true
	})
	if err := env.Run(); err != nil {
		t.Fatalf("env.Run: %v (doneZ=%v doneA=%v)", err, doneZ, doneA)
	}
	if !doneZ || !doneA {
		t.Fatalf("kernels did not complete: doneZ=%v doneA=%v", doneZ, doneA)
	}
}
