package gpusim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

// expectSingleKernelTime computes the analytic execution time of a kernel
// under the scheduler's model when it runs alone on an idle device and
// every wave is a full (or the final partial) wave with uniform residency.
func expectSingleKernelTime(arch fermi.Arch, k *cuda.Kernel) float64 {
	occ, err := arch.Occupancy(k.Resources())
	if err != nil {
		panic(err)
	}
	throughput := float64(arch.CoresPerSM) * arch.ClockHz
	blockWork := float64(k.Block.Count()) * k.CyclesPerThread
	remaining := k.Blocks()
	total := 0.0
	for remaining > 0 {
		wave := min(remaining, occ.BlocksPerSM*arch.SMs)
		// Round-robin spreads the wave; the busiest SM determines the
		// wave's completion (blocks on lighter SMs finish earlier, but
		// refill only happens per reschedule; for wave-aligned workloads
		// used in tests the distribution is uniform).
		perSM := (wave + arch.SMs - 1) / arch.SMs
		warps := perSM * occ.WarpsPerBlock
		denom := float64(warps)
		if lh := float64(arch.LatencyHidingWarps); denom < lh {
			denom = lh
		}
		rate := throughput * float64(occ.WarpsPerBlock) / denom
		// The scheduler arms wave timers on the integer-nanosecond clock,
		// rounding up (floor + 1ns); mirror that quantization exactly.
		total += (math.Floor(blockWork/rate*1e9) + 1) / 1e9
		remaining -= wave
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func launchAndTime(t *testing.T, arch fermi.Arch, ks ...*cuda.Kernel) (makespan sim.Duration, each []sim.Duration) {
	t.Helper()
	env := sim.NewEnv()
	dev := MustNew(env, Config{Arch: arch})
	each = make([]sim.Duration, len(ks))
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		start := p.Now()
		done := env.NewEvent()
		remaining := len(ks)
		for i, k := range ks {
			i, k := i, k
			env.Go("launcher", func(p *sim.Proc) {
				if err := c.Launch(p, k); err != nil {
					t.Errorf("launch %s: %v", k.Name, err)
				}
				each[i] = p.Now().Sub(start)
				remaining--
				if remaining == 0 {
					done.Fire(nil)
				}
			})
		}
		p.Wait(done)
		makespan = p.Now().Sub(start)
		c.Release()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return makespan, each
}

func closeTo(t *testing.T, got sim.Duration, wantSec float64, rel float64, msg string) {
	t.Helper()
	g := got.Seconds()
	if math.Abs(g-wantSec) > rel*wantSec+1e-7 {
		t.Fatalf("%s: got %.6fs, want %.6fs", msg, g, wantSec)
	}
}

func TestKernelSingleSmallBlock(t *testing.T) {
	arch := fermi.TeslaC2070()
	k := &cuda.Kernel{
		Name: "single", Grid: cuda.Dim(1), Block: cuda.Dim(128),
		CyclesPerThread: 1e6,
	}
	// One block of 4 warps on one SM: under-occupied, throttled by the
	// latency-hiding floor of 22 warps.
	want := expectSingleKernelTime(arch, k)
	makespan, _ := launchAndTime(t, arch, k)
	over := arch.KernelLaunchOverhead
	closeTo(t, makespan-over, want, 1e-6, "single small block")
	// Cross-check the formula itself: 128 threads x 1e6 cycles at
	// 32 SP x 1.15GHz x (4/22 share).
	manual := 128.0 * 1e6 / (32 * 1.15e9 * 4 / 22)
	if math.Abs(want-manual) > 1e-8*manual+2e-9 {
		t.Fatalf("model formula drifted: %g vs %g", want, manual)
	}
}

func TestKernelFullDeviceWave(t *testing.T) {
	arch := fermi.TeslaC2070()
	// 14 blocks of 1024 threads (32 warps): exactly one block per SM,
	// fully saturated (denominator = 32 warps).
	k := &cuda.Kernel{
		Name: "fullwave", Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024),
		CyclesPerThread: 1e5,
	}
	want := expectSingleKernelTime(arch, k)
	makespan, _ := launchAndTime(t, arch, k)
	closeTo(t, makespan-arch.KernelLaunchOverhead, want, 1e-6, "full wave")

	// Two waves take exactly twice as long.
	k2 := k.Clone()
	k2.Grid = cuda.Dim(2 * arch.SMs)
	makespan2, _ := launchAndTime(t, arch, k2)
	closeTo(t, makespan2-arch.KernelLaunchOverhead, 2*want, 1e-6, "two waves")
}

func TestSmallKernelsRunConcurrently(t *testing.T) {
	// Two kernels, each 14 blocks of 8 warps: together 16 warps/SM, still
	// under the 22-warp latency-hiding floor, so running both together
	// takes the same time as one alone — the Fermi concurrency the paper's
	// virtualization exploits.
	arch := fermi.TeslaC2070()
	mk := func(name string) *cuda.Kernel {
		return &cuda.Kernel{
			Name: name, Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(256),
			CyclesPerThread: 1e5,
		}
	}
	alone, _ := launchAndTime(t, arch, mk("a"))
	both, _ := launchAndTime(t, arch, mk("a"), mk("b"))
	if d := float64(both-alone) / float64(alone); d > 0.01 {
		t.Fatalf("two small kernels took %v vs %v alone (+%.1f%%); want full overlap",
			both, alone, 100*d)
	}
}

func TestFullKernelsSerialize(t *testing.T) {
	// Two kernels that each fill the device (32 warps/block: one block per
	// SM exhausts the 48-warp budget for a second 32-warp block).
	arch := fermi.TeslaC2070()
	mk := func(name string) *cuda.Kernel {
		return &cuda.Kernel{
			Name: name, Grid: cuda.Dim(arch.SMs), Block: cuda.Dim(1024),
			CyclesPerThread: 1e5,
		}
	}
	alone, _ := launchAndTime(t, arch, mk("a"))
	both, _ := launchAndTime(t, arch, mk("a"), mk("b"))
	ratio := float64(both) / float64(alone)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("two device-filling kernels ratio = %.3f, want ~2 (serialization)", ratio)
	}
}

func TestConcurrentKernelWindowLimit(t *testing.T) {
	// With MaxConcurrentKernels=1 two tiny kernels serialize even though
	// SM resources would allow overlap.
	arch := fermi.TeslaC2070()
	mk := func(name string) *cuda.Kernel {
		return &cuda.Kernel{
			Name: name, Grid: cuda.Dim(4), Block: cuda.Dim(128),
			CyclesPerThread: 1e6,
		}
	}
	concurrent, _ := launchAndTime(t, arch, mk("a"), mk("b"))
	arch1 := arch
	arch1.MaxConcurrentKernels = 1
	serialized, _ := launchAndTime(t, arch1, mk("a"), mk("b"))
	ratio := float64(serialized) / float64(concurrent)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("window=1 / window=16 ratio = %.3f, want ~2", ratio)
	}
}

func TestZeroWorkKernelCompletesInstantly(t *testing.T) {
	arch := fermi.TeslaC2070()
	k := &cuda.Kernel{Name: "empty", Grid: cuda.Dim(64), Block: cuda.Dim(256)}
	makespan, _ := launchAndTime(t, arch, k)
	if makespan != arch.KernelLaunchOverhead {
		t.Fatalf("zero-work kernel took %v, want launch overhead %v", makespan, arch.KernelLaunchOverhead)
	}
}

func TestMemoryBandwidthFloor(t *testing.T) {
	arch := fermi.TeslaC2070()
	// Tiny compute but 1 GiB of traffic: duration = bytes / 144 GB/s.
	k := &cuda.Kernel{
		Name: "membound", Grid: cuda.Dim(1024), Block: cuda.Dim(256),
		CyclesPerThread:   1,
		MemBytesPerThread: float64(1<<30) / float64(1024*256),
	}
	makespan, _ := launchAndTime(t, arch, k)
	wantFloor := float64(1<<30) / arch.MemBandwidth
	if makespan.Seconds() < wantFloor {
		t.Fatalf("mem-bound kernel took %.6fs, below bandwidth floor %.6fs",
			makespan.Seconds(), wantFloor)
	}
	closeTo(t, makespan, wantFloor, 0.01, "bandwidth floor")
}

func TestLaunchInvalidKernelFails(t *testing.T) {
	env := sim.NewEnv()
	dev := MustNew(env, Config{Arch: fermi.TeslaC2070()})
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		bad := &cuda.Kernel{Name: "bad", Grid: cuda.Dim(1), Block: cuda.Dim(4096)}
		if err := c.Launch(p, bad); err == nil {
			t.Error("launch of 4096-thread block succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalKernelComputes(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 16 << 20
	dev := MustNew(env, Config{Arch: arch, Functional: true})
	const n = 4096
	env.Go("main", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		a := c.MustMalloc(n * 4)
		b := c.MustMalloc(n * 4)
		out := c.MustMalloc(n * 4)
		ha := make([]float32, n)
		hb := make([]float32, n)
		for i := range ha {
			ha[i] = float32(i)
			hb[i] = 2 * float32(i)
		}
		c.MemcpyH2D(p, a, WrapHost(cuda.HostFloat32Bytes(ha), false), n*4)
		c.MemcpyH2D(p, b, WrapHost(cuda.HostFloat32Bytes(hb), false), n*4)
		k := &cuda.Kernel{
			Name: "vecadd", Grid: cuda.Dim(n / 256), Block: cuda.Dim(256),
			CyclesPerThread: 4,
			Args:            []any{a, b, out, n},
			Func: func(bc *cuda.BlockCtx) {
				av := cuda.Float32s(bc.Mem, bc.Ptr(0), bc.Int(3))
				bv := cuda.Float32s(bc.Mem, bc.Ptr(1), bc.Int(3))
				ov := cuda.Float32s(bc.Mem, bc.Ptr(2), bc.Int(3))
				base := bc.GlobalBase()
				for t := 0; t < bc.BlockDim.X; t++ {
					i := base + t
					if i < bc.Int(3) {
						ov[i] = av[i] + bv[i]
					}
				}
			},
		}
		if err := c.Launch(p, k); err != nil {
			t.Fatal(err)
		}
		hout := make([]float32, n)
		c.MemcpyD2H(p, WrapHost(cuda.HostFloat32Bytes(hout), false), out, n*4)
		for i := range hout {
			if hout[i] != 3*float32(i) {
				t.Fatalf("out[%d] = %g, want %g", i, hout[i], 3*float32(i))
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.KernelsRun != 1 {
		t.Fatalf("KernelsRun = %d, want 1", dev.KernelsRun)
	}
}

func TestManyWavesLargeGrid(t *testing.T) {
	// A 50K-block launch (the paper's vector-add grid) completes and
	// matches the wave model.
	arch := fermi.TeslaC2070()
	k := &cuda.Kernel{
		Name: "huge", Grid: cuda.Dim(48828), Block: cuda.Dim(1024),
		CyclesPerThread: 0.4,
	}
	want := expectSingleKernelTime(arch, k)
	makespan, _ := launchAndTime(t, arch, k)
	closeTo(t, makespan-arch.KernelLaunchOverhead, want, 0.01, "50K-block grid")
	// Should land in the vicinity of the paper's measured 0.038 ms Tcomp.
	if ms := makespan.Seconds() * 1e3; ms < 0.01 || ms > 0.2 {
		t.Fatalf("vector-add-like kernel = %.4f ms, want order of Table II's 0.038 ms", ms)
	}
}

// Property: for any mix of concurrently launched kernels, the device is
// work-conserving: the makespan is at least total-work/peak-throughput
// and at most what full serialization at the worst latency-hiding
// penalty would cost.
func TestQuickSchedulerWorkConservation(t *testing.T) {
	arch := fermi.TeslaC2070()
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 6 {
			seeds = seeds[:6]
		}
		var ks []*cuda.Kernel
		var totalWork float64
		for i, s := range seeds {
			blocks := int(s%32) + 1
			threads := 32 * (int(s/32)%8 + 1) // 32..256
			cycles := float64(s%997+1) * 1e3
			k := &cuda.Kernel{
				Name:            fmt.Sprintf("k%d", i),
				Grid:            cuda.Dim(blocks),
				Block:           cuda.Dim(threads),
				CyclesPerThread: cycles,
			}
			ks = append(ks, k)
			totalWork += k.TotalWorkCycles()
		}
		makespan, _ := launchAndTime(t, arch, ks...)
		peak := float64(arch.TotalCores()) * arch.ClockHz
		lower := totalWork / peak
		// Upper bound: every block serialized at the single-warp rate
		// (the pathological floor), plus launch overheads.
		perWarpRate := float64(arch.CoresPerSM) * arch.ClockHz / float64(arch.LatencyHidingWarps)
		var upper float64
		for _, k := range ks {
			occ, err := arch.Occupancy(k.Resources())
			if err != nil {
				return true
			}
			blockWork := float64(k.Block.Count()) * k.CyclesPerThread
			upper += float64(k.Blocks()) * blockWork / (perWarpRate * float64(occ.WarpsPerBlock))
		}
		upper += float64(len(ks)) * arch.KernelLaunchOverhead.Seconds() * 2
		got := makespan.Seconds()
		return got >= lower*0.999 && got <= upper*1.001+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a kernel's runtime never decreases when its per-thread work
// increases (monotonicity of the cost model end to end).
func TestQuickSchedulerMonotoneInWork(t *testing.T) {
	arch := fermi.TeslaC2070()
	f := func(s uint16) bool {
		blocks := int(s%24) + 1
		base := &cuda.Kernel{
			Name: "m", Grid: cuda.Dim(blocks), Block: cuda.Dim(128),
			CyclesPerThread: float64(s%1000+1) * 100,
		}
		heavier := base.Clone()
		heavier.CyclesPerThread *= 2
		t1, _ := launchAndTime(t, arch, base)
		t2, _ := launchAndTime(t, arch, heavier)
		return t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
