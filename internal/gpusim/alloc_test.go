package gpusim

import (
	"testing"
	"testing/quick"

	"gpuvirt/internal/cuda"
)

func TestAllocBasic(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	p1, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == 0 {
		t.Fatal("allocator returned the null DevPtr")
	}
	if uint64(p1)%256 != 0 {
		t.Fatalf("pointer %#x not 256-aligned", uint64(p1))
	}
	if a.InUse() != 1024 {
		t.Fatalf("InUse = %d, want 1024 (rounded)", a.InUse())
	}
	p2, err := a.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("overlapping allocations")
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 0 || a.Allocations() != 0 {
		t.Fatalf("allocator not empty after frees: %d bytes, %d allocs", a.InUse(), a.Allocations())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
}

func TestAllocOOM(t *testing.T) {
	a := NewAllocator(4096, 256)
	if _, err := a.Alloc(4096); err == nil {
		t.Fatal("allocation of full space should fail (first 256 bytes reserved)")
	}
	p, err := a.Alloc(3840)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(3840); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestFreeErrors(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	if err := a.Free(cuda.DevPtr(256)); err == nil {
		t.Fatal("free of never-allocated pointer succeeded")
	}
	p, _ := a.Alloc(100)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestAllocCoalescing(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	var ps []cuda.DevPtr
	for i := 0; i < 10; i++ {
		p, err := a.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	// Free in an interleaved order and verify coalescing via invariants.
	for _, i := range []int{1, 3, 5, 7, 9, 0, 2, 4, 6, 8} {
		if err := a.Free(ps[i]); err != nil {
			t.Fatal(err)
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.free) != 1 {
		t.Fatalf("free list has %d spans after freeing everything, want 1", len(a.free))
	}
	// The whole space (minus the reserved page) must be allocatable again.
	if _, err := a.Alloc(1<<20 - 256); err != nil {
		t.Fatalf("cannot reallocate full space: %v", err)
	}
}

func TestAllocPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAllocator(100, 256) },  // total <= align
		func() { NewAllocator(1024, 0) },   // align < 1
		func() { NewAllocator(1024, 100) }, // not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: random alloc/free sequences keep all allocations disjoint and
// the free list coherent.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator(1<<18, 256)
		var live []cuda.DevPtr
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 { // free a pseudo-random live ptr
				i := int(op/3) % len(live)
				if err := a.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				size := int64(op%4096) + 1
				p, err := a.Alloc(size)
				if err != nil {
					continue // OOM is fine
				}
				live = append(live, p)
			}
			if err := a.checkInvariants(); err != nil {
				return false
			}
		}
		// All live allocations must be mutually disjoint.
		for i := range live {
			si, _ := a.SizeOf(live[i])
			for j := i + 1; j < len(live); j++ {
				sj, _ := a.SizeOf(live[j])
				lo, hi := int64(live[i]), int64(live[i])+si
				lo2, hi2 := int64(live[j]), int64(live[j])+sj
				if lo < hi2 && lo2 < hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
