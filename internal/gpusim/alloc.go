package gpusim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"gpuvirt/internal/cuda"
)

// Allocator manages the device memory address space with a first-fit
// free-list. Allocations are aligned to Align bytes; address 0 is never
// handed out (it is the null DevPtr), so the first Align bytes are
// reserved.
type Allocator struct {
	total int64
	align int64
	free  []span // sorted by offset, coalesced
	used  map[cuda.DevPtr]int64
	// inUse is atomic: all mutation happens on the owner goroutine, but
	// InUse() feeds telemetry (Device.MemInUse, the gvm_mem_in_use_bytes
	// gauge) read from scraper goroutines.
	inUse atomic.Int64
	// reserved tracks logical bytes promised to sessions, independent of
	// what is physically resident right now. A session that has been
	// evicted to host memory keeps its reservation; reserved therefore may
	// exceed total under overcommit. Atomic for the same telemetry reason
	// as inUse.
	reserved atomic.Int64
	// evictor, when set, is asked to make room whenever a first-fit pass
	// fails. It returns true if it freed anything (Alloc retries), false
	// when nothing more can be evicted (Alloc reports OOM).
	evictor func(need int64) bool
}

type span struct{ off, size int64 }

// NewAllocator returns an allocator over total bytes with the given
// alignment (power of two, >= 1).
func NewAllocator(total, align int64) *Allocator {
	if total <= align {
		panic("gpusim: allocator total must exceed alignment")
	}
	if align < 1 || align&(align-1) != 0 {
		panic("gpusim: alignment must be a positive power of two")
	}
	return &Allocator{
		total: total,
		align: align,
		free:  []span{{off: align, size: total - align}},
		used:  make(map[cuda.DevPtr]int64),
	}
}

// Total returns the size of the managed address space.
func (a *Allocator) Total() int64 { return a.total }

// InUse returns the number of bytes currently allocated (after rounding).
func (a *Allocator) InUse() int64 { return a.inUse.Load() }

// Resident is InUse under its residency-layer name: bytes physically
// backed by device memory right now.
func (a *Allocator) Resident() int64 { return a.inUse.Load() }

// Reserved returns the logical bytes promised to sessions. Under
// overcommit this may exceed Total(); the difference between Reserved
// and Resident is what has been evicted to host snapshots (or reserved
// but not yet touched).
func (a *Allocator) Reserved() int64 { return a.reserved.Load() }

// Reserve records n logical bytes as promised. Reservations are pure
// accounting — they do not consume address space until Alloc.
func (a *Allocator) Reserve(n int64) { a.reserved.Add(n) }

// Unreserve returns n logical bytes to the pool.
func (a *Allocator) Unreserve(n int64) {
	if a.reserved.Add(-n) < 0 {
		panic("gpusim: Unreserve below zero")
	}
}

// SetEvictor installs the callback Alloc invokes when a first-fit pass
// fails. The callback must free at least one allocation (via Free) and
// return true to make Alloc retry, or return false to let the OOM
// surface. It runs on the owner goroutine, inside Alloc.
func (a *Allocator) SetEvictor(fn func(need int64) bool) { a.evictor = fn }

// RoundUp returns n rounded up to the allocator's alignment — the size
// Alloc would actually consume for an n-byte request.
func (a *Allocator) RoundUp(n int64) int64 {
	return (n + a.align - 1) / a.align * a.align
}

// LargestFree returns the size of the largest contiguous free span —
// the biggest single allocation that could succeed right now. The free
// list is short in practice (coalesced), so a linear scan is fine.
func (a *Allocator) LargestFree() int64 {
	var max int64
	for _, s := range a.free {
		if s.size > max {
			max = s.size
		}
	}
	return max
}

// Allocations returns the number of live allocations.
func (a *Allocator) Allocations() int { return len(a.used) }

// Alloc reserves n bytes and returns the device address, or an
// out-of-memory error. Zero or negative sizes are rejected. When an
// evictor is installed, a failed first-fit pass asks it to make room
// and retries until it either fits or the evictor reports nothing left
// to evict.
func (a *Allocator) Alloc(n int64) (cuda.DevPtr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("gpusim: alloc of %d bytes", n)
	}
	size := (n + a.align - 1) / a.align * a.align
	for {
		if ptr, ok := a.tryAlloc(size); ok {
			return ptr, nil
		}
		if a.evictor == nil || !a.evictor(size) {
			break
		}
	}
	// Report the largest contiguous span, not total-minus-inUse: under
	// fragmentation the sum of free spans overstates what a single
	// allocation can get.
	return 0, fmt.Errorf("gpusim: out of device memory: need %d bytes, largest contiguous span %d (%d free total in %d spans)",
		size, a.LargestFree(), a.total-a.align-a.inUse.Load(), len(a.free))
}

// tryAlloc is one first-fit pass over the free list.
func (a *Allocator) tryAlloc(size int64) (cuda.DevPtr, bool) {
	for i, s := range a.free {
		if s.size < size {
			continue
		}
		ptr := cuda.DevPtr(s.off)
		if s.size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = span{off: s.off + size, size: s.size - size}
		}
		a.used[ptr] = size
		a.inUse.Add(size)
		return ptr, true
	}
	return 0, false
}

// Free releases the allocation at ptr. Freeing an unknown address is an
// error (double free / wild pointer).
func (a *Allocator) Free(ptr cuda.DevPtr) error {
	size, ok := a.used[ptr]
	if !ok {
		return fmt.Errorf("gpusim: free of unallocated device pointer %#x", uint64(ptr))
	}
	delete(a.used, ptr)
	a.inUse.Add(-size)
	s := span{off: int64(ptr), size: size}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off > s.off })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the rounded size of the live allocation at ptr.
func (a *Allocator) SizeOf(ptr cuda.DevPtr) (int64, bool) {
	n, ok := a.used[ptr]
	return n, ok
}

// checkInvariants verifies the free list is sorted, coalesced, in-range
// and disjoint from allocations; used by tests.
func (a *Allocator) checkInvariants() error {
	var freeTotal int64
	for i, s := range a.free {
		if s.size <= 0 || s.off < a.align || s.off+s.size > a.total {
			return fmt.Errorf("span %d out of range: %+v", i, s)
		}
		if i > 0 {
			prev := a.free[i-1]
			if prev.off+prev.size > s.off {
				return fmt.Errorf("spans %d,%d overlap", i-1, i)
			}
			if prev.off+prev.size == s.off {
				return fmt.Errorf("spans %d,%d not coalesced", i-1, i)
			}
		}
		freeTotal += s.size
	}
	if freeTotal+a.inUse.Load() != a.total-a.align {
		return fmt.Errorf("accounting: free %d + used %d != %d", freeTotal, a.inUse.Load(), a.total-a.align)
	}
	return nil
}
