package gpusim

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// FaultKind classifies injected device faults, mirroring the NVIDIA XID
// error taxonomy: memory faults (XID 48-class ECC/page-retirement
// errors) fail new allocations, hangs (XID 8/13-class engine timeouts)
// kill in-flight and future kernels, and fatal errors (XID 79 "GPU has
// fallen off the bus") fail everything. Faults are sticky and only
// escalate; device-to-host copies keep working on a faulted device so
// session state remains evacuable for failover.
type FaultKind int

const (
	// FaultNone means the device is healthy.
	FaultNone FaultKind = iota
	// XidMemory fails new device-memory allocations; resident
	// allocations and running kernels are unaffected.
	XidMemory
	// XidHang aborts in-flight kernels and fails new launches;
	// allocations still succeed.
	XidHang
	// XidFatal fails allocations and launches and aborts in-flight
	// kernels.
	XidFatal
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case XidMemory:
		return "memory"
	case XidHang:
		return "hang"
	case XidFatal:
		return "fatal"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ParseFaultKind parses the spec names used by gvmd -fault-inject.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "memory":
		return XidMemory, nil
	case "hang":
		return XidHang, nil
	case "fatal":
		return XidFatal, nil
	default:
		return FaultNone, fmt.Errorf("gpusim: unknown fault kind %q (want memory|hang|fatal)", s)
	}
}

// FaultError is the typed error every operation on a faulted device
// returns; callers distinguish it from ordinary out-of-memory or
// validation errors with errors.As.
type FaultError struct {
	Kind FaultKind
	GPU  int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("gpusim: gpu %d: xid %s fault", e.GPU, e.Kind)
}

// IsFault unwraps err into a FaultError if it carries one.
func IsFault(err error) (*FaultError, bool) {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// SetIndex records the device's GPU index, used to label fault errors
// and telemetry. The node layer assigns it at shard construction.
func (d *Device) SetIndex(i int) { d.index = i }

// Index returns the device's GPU index (0 when never set).
func (d *Device) Index() int { return d.index }

// Fault returns the device's current fault state. Safe to call from any
// goroutine.
func (d *Device) Fault() FaultKind { return FaultKind(d.fault.Load()) }

// OnFault registers a callback invoked (on the goroutine that injects
// the fault — the shard owner) whenever the device's fault state
// escalates. The node layer uses it to drive shard health.
func (d *Device) OnFault(fn func(FaultKind)) {
	d.onFault = append(d.onFault, fn)
}

// InjectFault puts the device into the given fault state. Faults only
// escalate (injecting a milder kind over a severer one is a no-op).
// Hang and fatal faults abort every in-flight kernel: their completion
// events fire with a *FaultError payload instead of nil, SM budgets are
// returned, and no KernelsRun credit is given. Must be called on the
// device's owner goroutine (for a daemon shard, submit through the ipc
// server's owner loop).
func (d *Device) InjectFault(kind FaultKind) {
	if kind <= d.Fault() {
		return
	}
	d.fault.Store(int32(kind))
	if kind == XidHang || kind == XidFatal {
		d.sched.abortAll(&FaultError{Kind: kind, GPU: d.index})
	}
	for _, fn := range d.onFault {
		fn(kind)
	}
}

// faultFor returns the FaultError operations of class want should fail
// with, or nil when the device is healthy for that class.
func (d *Device) faultFor(want ...FaultKind) error {
	f := d.Fault()
	if f == FaultNone {
		return nil
	}
	for _, k := range want {
		if f == k {
			return &FaultError{Kind: f, GPU: d.index}
		}
	}
	return nil
}

// SetFaultInjector installs a launch-path injector (nil uninstalls).
func (d *Device) SetFaultInjector(fi *FaultInjector) { d.injector = fi }

// FaultInjector decides, per kernel launch, whether to inject a fault —
// either deterministically on the N-th launch or by a seeded coin flip.
// One injector serves one device (the launch path is serialized on the
// device's owner goroutine, so no locking is needed).
type FaultInjector struct {
	after    int64 // inject on the after-th launch; 0 disables
	kind     FaultKind
	rate     float64 // per-launch probability; 0 disables
	kinds    []FaultKind
	rng      *rand.Rand
	launches int64
}

// tick is called once per launch attempt; it injects at most one fault
// over the injector's lifetime.
func (fi *FaultInjector) tick(d *Device) {
	if fi == nil || d.Fault() != FaultNone {
		return
	}
	fi.launches++
	if fi.after > 0 {
		if fi.launches == fi.after {
			d.InjectFault(fi.kind)
		}
		return
	}
	if fi.rate > 0 && fi.rng.Float64() < fi.rate {
		d.InjectFault(fi.kinds[fi.rng.Intn(len(fi.kinds))])
	}
}

// FaultPlan is a parsed -fault-inject spec; it mints per-device
// injectors so each GPU's randomness is independent and deterministic.
type FaultPlan struct {
	gpu   int // target GPU index; -1 = every GPU
	after int64
	kind  FaultKind
	rate  float64
	seed  int64
	kinds []FaultKind
}

// ParseFaultSpec parses a gvmd -fault-inject specification. Two forms,
// both as comma-separated key=value pairs:
//
//	gpu=0,after=25,kind=hang     deterministic: fault GPU 0's 25th launch
//	rate=0.01,seed=7,kinds=hang|fatal   seeded random per-launch coin flip
//
// gpu defaults to every GPU, kind to fatal, kinds to memory|hang|fatal.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	p := &FaultPlan{gpu: -1, kind: XidFatal, seed: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("gpusim: fault spec field %q is not key=value", field)
		}
		var err error
		switch key {
		case "gpu":
			p.gpu, err = strconv.Atoi(val)
		case "after":
			p.after, err = strconv.ParseInt(val, 10, 64)
		case "kind":
			p.kind, err = ParseFaultKind(val)
		case "rate":
			p.rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			p.seed, err = strconv.ParseInt(val, 10, 64)
		case "kinds":
			for _, name := range strings.Split(val, "|") {
				var k FaultKind
				if k, err = ParseFaultKind(name); err != nil {
					break
				}
				p.kinds = append(p.kinds, k)
			}
		default:
			return nil, fmt.Errorf("gpusim: unknown fault spec key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("gpusim: fault spec %s=%s: %v", key, val, err)
		}
	}
	if p.after > 0 && p.rate > 0 {
		return nil, fmt.Errorf("gpusim: fault spec mixes after= and rate=")
	}
	if p.after <= 0 && p.rate <= 0 {
		return nil, fmt.Errorf("gpusim: fault spec needs after=N or rate=R")
	}
	if p.rate > 0 && len(p.kinds) == 0 {
		p.kinds = []FaultKind{XidMemory, XidHang, XidFatal}
	}
	return p, nil
}

// ForGPU returns the injector for GPU i, or nil when the plan does not
// target it. Random plans derive each GPU's stream from seed+i so
// multi-GPU runs are reproducible yet uncorrelated.
func (p *FaultPlan) ForGPU(i int) *FaultInjector {
	if p == nil || (p.gpu >= 0 && p.gpu != i) {
		return nil
	}
	fi := &FaultInjector{after: p.after, kind: p.kind, rate: p.rate, kinds: p.kinds}
	if p.rate > 0 {
		fi.rng = rand.New(rand.NewSource(p.seed + int64(i)))
	}
	return fi
}
