package gpusim

import (
	"math"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
)

func newTestDevice(t *testing.T, functional bool) (*sim.Env, *Device) {
	t.Helper()
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	if functional {
		arch.MemBytes = 64 << 20 // keep functional backing small in tests
	}
	dev, err := New(env, Config{Arch: arch, Functional: functional})
	if err != nil {
		t.Fatal(err)
	}
	return env, dev
}

func run(t *testing.T, env *sim.Env) {
	t.Helper()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsInvalidArch(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.SMs = 0
	if _, err := New(env, Config{Arch: arch}); err == nil {
		t.Fatal("New accepted an invalid arch")
	}
}

func TestContextCreationCosts(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var finished []sim.Time
	for i := 0; i < 8; i++ {
		env.Go("init", func(p *sim.Proc) {
			dev.CreateContext(p)
			finished = append(finished, p.Now())
		})
	}
	run(t, env)
	// Serialized on the driver lock: total Tinit = DeviceInit + 8 x Create.
	want := sim.Time(arch.DeviceInitCost + 8*arch.ContextCreateCost)
	last := finished[len(finished)-1]
	if last != want {
		t.Fatalf("total init = %v, want %v (paper Tinit)", last, want)
	}
	// With the calibrated C2070 this is the paper's ~1519 ms.
	if ms := last.Milliseconds(); math.Abs(ms-1519) > 1 {
		t.Fatalf("Tinit = %.3f ms, want ~1519 ms (Table II)", ms)
	}
}

func TestContextSwitchCostsAndCounting(t *testing.T) {
	env, dev := newTestDevice(t, false)
	var c1, c2 *Context
	env.Go("setup", func(p *sim.Proc) {
		c1 = dev.CreateContext(p)
		c2 = dev.CreateContext(p)

		base := p.Now()
		c1.Acquire(p) // first-ever acquire: no previous owner, no switch
		if got := p.Now().Sub(base); got != 0 {
			t.Errorf("first acquire cost %v, want 0", got)
		}
		c1.Release()

		base = p.Now()
		c1.Acquire(p) // same owner: free
		if got := p.Now().Sub(base); got != 0 {
			t.Errorf("same-context acquire cost %v, want 0", got)
		}
		c1.Release()

		base = p.Now()
		c2.Acquire(p) // owner change: pays switch cost
		if got := p.Now().Sub(base); got != dev.Arch().ContextSwitchCost {
			t.Errorf("switch cost %v, want %v", got, dev.Arch().ContextSwitchCost)
		}
		c2.Release()
	})
	run(t, env)
	if dev.ContextSwitches != 1 {
		t.Fatalf("ContextSwitches = %d, want 1", dev.ContextSwitches)
	}
}

func TestContextSwitchOverride(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("setup", func(p *sim.Proc) {
		c1 := dev.CreateContext(p)
		c2 := dev.CreateContext(p)
		c2.SwitchCost = 220 * sim.Millisecond
		c1.Acquire(p)
		c1.Release()
		base := p.Now()
		c2.Acquire(p)
		if got := p.Now().Sub(base); got != 220*sim.Millisecond {
			t.Errorf("override switch cost %v, want 220ms", got)
		}
		c2.Release()
	})
	run(t, env)
}

func TestContextArbiterFIFOSerializesCycles(t *testing.T) {
	// Three processes, three contexts, each holding the device for 10 ms:
	// cycles serialize with one switch between consecutive holders.
	env, dev := newTestDevice(t, false)
	var done []sim.Time
	var ctxs []*Context
	env.Go("setup", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			ctxs = append(ctxs, dev.CreateContext(p))
		}
		for i := 0; i < 3; i++ {
			c := ctxs[i]
			env.Go("user", func(p *sim.Proc) {
				c.Acquire(p)
				p.Sleep(10 * sim.Millisecond)
				c.Release()
				done = append(done, p.Now())
			})
		}
	})
	run(t, env)
	sw := dev.Arch().ContextSwitchCost
	t0 := sim.Time(dev.Arch().DeviceInitCost + 3*dev.Arch().ContextCreateCost)
	want := []sim.Time{
		t0.Add(10 * sim.Millisecond),
		t0.Add(10*sim.Millisecond + sw + 10*sim.Millisecond),
		t0.Add(10*sim.Millisecond + sw + 10*sim.Millisecond + sw + 10*sim.Millisecond),
	}
	if len(done) != 3 {
		t.Fatalf("%d completions", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if dev.ContextSwitches != 2 {
		t.Fatalf("ContextSwitches = %d, want 2", dev.ContextSwitches)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("bad", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unmatched Release")
			}
		}()
		c.Release()
	})
	run(t, env)
}

func TestDestroyedContextPanics(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("bad", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Destroy()
		defer func() {
			if recover() == nil {
				t.Error("expected panic on use after Destroy")
			}
		}()
		c.Acquire(p)
	})
	run(t, env)
}

func TestMemcpyTiming(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 10 << 20
	env.Go("xfer", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		dst := c.MustMalloc(n)
		host := dev.AllocHost(n, false)
		base := p.Now()
		c.MemcpyH2D(p, dst, host, n)
		if got, want := p.Now().Sub(base), arch.TransferTime(n, true, false); got != want {
			t.Errorf("H2D pageable took %v, want %v", got, want)
		}
		pinnedHost := dev.AllocHost(n, true)
		base = p.Now()
		c.MemcpyH2D(p, dst, pinnedHost, n)
		if got, want := p.Now().Sub(base), arch.TransferTime(n, true, true); got != want {
			t.Errorf("H2D pinned took %v, want %v", got, want)
		}
		base = p.Now()
		c.MemcpyD2H(p, host, dst, n)
		if got, want := p.Now().Sub(base), arch.TransferTime(n, false, false); got != want {
			t.Errorf("D2H took %v, want %v", got, want)
		}
	})
	run(t, env)
	if dev.BytesH2D != 2*n || dev.BytesD2H != n {
		t.Fatalf("byte counters: H2D=%d D2H=%d", dev.BytesH2D, dev.BytesD2H)
	}
}

func TestSameDirectionTransfersSerialize(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 8 << 20
	one := arch.TransferTime(n, true, false)
	var finish []sim.Time
	env.Go("setup", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		dst1, dst2 := c.MustMalloc(n), c.MustMalloc(n)
		h := dev.AllocHost(n, false)
		t0 := p.Now()
		for _, dst := range []cuda.DevPtr{dst1, dst2} {
			dst := dst
			env.Go("x", func(p *sim.Proc) {
				c.MemcpyH2D(p, dst, h, n)
				finish = append(finish, p.Now().Add(-sim.Duration(t0)))
			})
		}
	})
	run(t, env)
	if finish[0] != sim.Time(one) || finish[1] != sim.Time(2*one) {
		t.Fatalf("finishes = %v, want [%v %v] (full-bandwidth FIFO)", finish, one, 2*one)
	}
}

func TestOppositeDirectionsOverlapWithTwoEngines(t *testing.T) {
	env, dev := newTestDevice(t, false)
	arch := dev.Arch()
	var n int64 = 8 << 20
	var finish []sim.Time
	env.Go("setup", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, false)
		env.Go("in", func(p *sim.Proc) {
			c.MemcpyH2D(p, d, h, n)
			finish = append(finish, p.Now())
		})
		env.Go("out", func(p *sim.Proc) {
			c.MemcpyD2H(p, h, d, n)
			finish = append(finish, p.Now())
		})
	})
	run(t, env)
	setup := sim.Time(arch.DeviceInitCost + arch.ContextCreateCost)
	// D2H (3.0 GB/s) finishes slightly before H2D (2.95 GB/s); both overlap.
	wantD2H := setup.Add(arch.TransferTime(n, false, false))
	wantH2D := setup.Add(arch.TransferTime(n, true, false))
	if finish[0] != wantD2H {
		t.Fatalf("D2H finished at %v, want %v", finish[0], wantD2H)
	}
	if finish[1] != wantH2D {
		t.Fatalf("H2D finished at %v, want %v (should overlap D2H)", finish[1], wantH2D)
	}
}

func TestSingleCopyEngineSerializesDirections(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.GeForceGTX480() // 1 copy engine
	dev := MustNew(env, Config{Arch: arch})
	var n int64 = 8 << 20
	var finishes []sim.Time
	env.Go("setup", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		d := c.MustMalloc(n)
		h := dev.AllocHost(n, false)
		t0 := p.Now()
		env.Go("in", func(p *sim.Proc) {
			c.MemcpyH2D(p, d, h, n)
			finishes = append(finishes, p.Now().Add(-sim.Duration(t0)))
		})
		env.Go("out", func(p *sim.Proc) {
			c.MemcpyD2H(p, h, d, n)
			finishes = append(finishes, p.Now().Add(-sim.Duration(t0)))
		})
	})
	run(t, env)
	h2d := arch.TransferTime(n, true, false)
	d2h := arch.TransferTime(n, false, false)
	if finishes[0] != sim.Time(h2d) {
		t.Fatalf("first = %v, want %v", finishes[0], h2d)
	}
	if finishes[1] != sim.Time(h2d+d2h) {
		t.Fatalf("second = %v, want %v (serialized on one engine)", finishes[1], h2d+d2h)
	}
}

func TestFunctionalMemcpyMovesBytes(t *testing.T) {
	env, dev := newTestDevice(t, true)
	env.Go("io", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		d := c.MustMalloc(16)
		src := dev.AllocHost(16, false)
		for i := range src.Data() {
			src.Data()[i] = byte(i * 3)
		}
		c.MemcpyH2D(p, d, src, 16)
		dst := dev.AllocHost(16, true)
		c.MemcpyD2H(p, dst, d, 16)
		for i, b := range dst.Data() {
			if b != byte(i*3) {
				t.Errorf("byte %d = %d, want %d", i, b, i*3)
			}
		}
	})
	run(t, env)
}

func TestTimingOnlyModeHasNoBacking(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("io", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		d := c.MustMalloc(16)
		if dev.Bytes(d, 16) != nil {
			t.Error("timing-only device returned backing memory")
		}
		h := dev.AllocHost(16, false)
		if h.Data() != nil {
			t.Error("timing-only host buffer has data")
		}
		// Copies must still advance time without touching memory.
		base := p.Now()
		c.MemcpyH2D(p, d, h, 16)
		if p.Now() == base {
			t.Error("timing-only copy took no time")
		}
	})
	run(t, env)
}

func TestDeviceBytesOutOfRangePanics(t *testing.T) {
	env, dev := newTestDevice(t, true)
	env.Go("oob", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		dev.Bytes(cuda.DevPtr(dev.Arch().MemBytes-4), 16)
	})
	run(t, env)
}

func TestHostBufferWrap(t *testing.T) {
	data := []byte{1, 2, 3}
	b := WrapHost(data, true)
	if b.Size() != 3 || !b.Pinned() || &b.Data()[0] != &data[0] {
		t.Fatal("WrapHost did not alias the slice")
	}
}

func TestComputeModes(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()

	excl := MustNew(env, Config{Arch: arch, Mode: ComputeExclusive})
	proh := MustNew(env, Config{Arch: arch, Mode: ComputeProhibited})
	env.Go("p", func(p *sim.Proc) {
		// Exclusive: first context admitted, second refused, admitted
		// again after Destroy.
		c1, err := excl.TryCreateContext(p)
		if err != nil {
			t.Errorf("first exclusive context refused: %v", err)
			return
		}
		if _, err := excl.TryCreateContext(p); err == nil {
			t.Error("second context admitted in exclusive mode")
		}
		c1.Destroy()
		if _, err := excl.TryCreateContext(p); err != nil {
			t.Errorf("context after Destroy refused: %v", err)
		}
		// Prohibited: nothing admitted.
		if _, err := proh.TryCreateContext(p); err == nil {
			t.Error("context admitted in prohibited mode")
		}
	})
	run(t, env)
	if excl.Mode() != ComputeExclusive || excl.LiveContexts() != 1 {
		t.Fatalf("mode=%v live=%d", excl.Mode(), excl.LiveContexts())
	}
}

func TestComputeModeStrings(t *testing.T) {
	if ComputeDefault.String() != "default" ||
		ComputeExclusive.String() != "exclusive" ||
		ComputeProhibited.String() != "prohibited" {
		t.Fatal("mode names wrong")
	}
	if ComputeMode(9).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}

func TestDoubleDestroyCountsOnce(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("p", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Destroy()
		c.Destroy()
	})
	run(t, env)
	if dev.LiveContexts() != 0 {
		t.Fatalf("LiveContexts = %d after double destroy", dev.LiveContexts())
	}
}

func TestContextFreeAndSizeOf(t *testing.T) {
	env, dev := newTestDevice(t, true)
	env.Go("p", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		ptr := c.MustMalloc(1000)
		size, ok := c.SizeOf(ptr)
		if !ok || size != 1024 {
			t.Errorf("SizeOf = %d,%v, want 1024 (rounded)", size, ok)
		}
		// Functional backing is attached and readable.
		b := dev.Bytes(ptr, 1000)
		if len(b) != 1000 {
			t.Errorf("Bytes len = %d", len(b))
		}
		b[0] = 42
		if err := c.Free(ptr); err != nil {
			t.Error(err)
		}
		if _, ok := c.SizeOf(ptr); ok {
			t.Error("SizeOf found a freed allocation")
		}
		// Backing is detached: access panics.
		defer func() {
			if recover() == nil {
				t.Error("Bytes on freed allocation did not panic")
			}
		}()
		dev.Bytes(ptr, 4)
	})
	run(t, env)
	if dev.MemInUse() != 0 {
		t.Fatalf("MemInUse = %d", dev.MemInUse())
	}
	if !dev.Functional() {
		t.Fatal("Functional() = false on functional device")
	}
	if dev.Env() == nil {
		t.Fatal("Env() nil")
	}
}

func TestFreeUnknownPointerErrors(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("p", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		if err := c.Free(cuda.DevPtr(512)); err == nil {
			t.Error("Free of unknown pointer succeeded")
		}
	})
	run(t, env)
}

func TestStreamAccessors(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("p", func(p *sim.Proc) {
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		s := c.NewStream()
		if s.ID() == 0 {
			t.Error("stream ID zero")
		}
		if s.Context() != c {
			t.Error("stream context wrong")
		}
		if s.Busy() != 0 {
			t.Error("fresh stream busy")
		}
		d := c.MustMalloc(1024)
		h := dev.AllocHost(1024, true)
		s.MemcpyH2DAsync(d, h, 1024)
		if s.Busy() != 1 {
			t.Errorf("Busy = %d after enqueue", s.Busy())
		}
		s.Synchronize(p)
	})
	run(t, env)
}

func TestSchedulerUtilization(t *testing.T) {
	env, dev := newTestDevice(t, false)
	env.Go("p", func(p *sim.Proc) {
		if dev.sched.Utilization() != 0 {
			t.Error("idle utilization != 0")
		}
		c := dev.CreateContext(p)
		c.Acquire(p)
		defer c.Release()
		k := &cuda.Kernel{Name: "u", Grid: cuda.Dim(14), Block: cuda.Dim(128), CyclesPerThread: 1e6}
		done, err := c.LaunchAsync(p, k)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(sim.Microsecond)
		if u := dev.sched.Utilization(); u <= 0 || u > 1 {
			t.Errorf("mid-run utilization = %v", u)
		}
		p.Wait(done)
		if dev.sched.Utilization() != 0 {
			t.Error("utilization after completion != 0")
		}
	})
	run(t, env)
}

func TestAllocatorTotal(t *testing.T) {
	a := NewAllocator(1<<20, 256)
	if a.Total() != 1<<20 {
		t.Fatalf("Total = %d", a.Total())
	}
}
