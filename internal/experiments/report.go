package experiments

import (
	"fmt"
	"strings"

	"gpuvirt/internal/model"
	"gpuvirt/internal/stats"
)

// RenderTableII formats the micro-benchmark profiles as the paper's
// Table II.
func RenderTableII(rows []model.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II. INITIAL BENCHMARK PROFILES AND PARAMETERS\n")
	fmt.Fprintf(&b, "%-16s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%16s", r.Name)
	}
	b.WriteByte('\n')
	line := func(label string, f func(model.Params) float64) {
		fmt.Fprintf(&b, "%-16s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%16.3f", f(r))
		}
		b.WriteByte('\n')
	}
	line("Tinit (ms)", func(p model.Params) float64 { return p.Tinit.Seconds() * 1e3 })
	line("Tdata_in (ms)", func(p model.Params) float64 { return p.TdataIn.Seconds() * 1e3 })
	line("Tcomp (ms)", func(p model.Params) float64 { return p.Tcomp.Seconds() * 1e3 })
	line("Tdata_out (ms)", func(p model.Params) float64 { return p.TdataOut.Seconds() * 1e3 })
	line("Tctx_switch (ms)", func(p model.Params) float64 { return p.TctxSwitch.Seconds() * 1e3 })
	return b.String()
}

// RenderSeries formats turnaround curves (Figures 9, 11-15) with a
// per-workload speedup summary line.
func RenderSeries(title string, series []TurnaroundSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "  %s (turnaround, ms)\n", s.Workload)
		fmt.Fprintf(&b, "    %-6s %14s %14s %10s\n", "procs", "no-virt", "virt", "speedup")
		for i, n := range s.N {
			sp := 0.0
			if s.VirtMS[i] > 0 {
				sp = s.NoVirtMS[i] / s.VirtMS[i]
			}
			fmt.Fprintf(&b, "    %-6d %14.1f %14.1f %9.2fx\n", n, s.NoVirtMS[i], s.VirtMS[i], sp)
		}
		if sp := stats.Speedups(s.NoVirtMS, s.VirtMS); sp != nil {
			sum := stats.Summarize(sp)
			fmt.Fprintf(&b, "    speedup over 1..%d procs: geomean %.2fx, min %.2fx, max %.2fx\n",
				len(sp), stats.GeoMean(sp), sum.Min, sum.Max)
		}
	}
	return b.String()
}

// RenderTableIII formats the speedup comparison as the paper's Table III.
func RenderTableIII(rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III. SPEEDUP COMPARISONS (8 PROCESSES)\n")
	fmt.Fprintf(&b, "  %-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14s", r.Name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-22s", "Experimental Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14.3f", r.Experimental)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-22s", "Theoretical Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14.3f", r.Theoretical)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-22s", "Theoretical Deviation")
	for _, r := range rows {
		fmt.Fprintf(&b, "%13.3f%%", r.Deviation*100)
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderFigure10 formats the overhead sweep.
func RenderFigure10(points []OverheadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 10. VIRTUALIZATION OVERHEADS (1 process, vector add)\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s %10s\n", "data (MB)", "turnaround", "pure GPU", "overhead")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-10d %12.1fms %12.1fms %9.1f%%\n",
			p.DataMB, p.TurnaroundMS, p.PureGPUMS, p.OverheadPct)
	}
	return b.String()
}

// RenderTableIV formats the application catalog.
func RenderTableIV(rows []AppRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV. DETAILS OF APPLICATION BENCHMARKS\n")
	fmt.Fprintf(&b, "  %-15s %-24s %6s  %-15s %12s %10s\n",
		"Benchmark", "Problem Size", "Grid", "Class", "comp:I/O", "cycle(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %-24s %6d  %-15s %12.2f %10.1f\n",
			r.Name, r.ProblemSize, r.GridSize, string(r.Class), r.CompIORatio, r.CycleMS)
	}
	return b.String()
}

// RenderFigure16 formats the application speedups.
func RenderFigure16(rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 16. SPEEDUPS WITH 8 PROCESSES (virtualized vs direct)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %6.2fx\n", r.Name, r.Experimental)
	}
	return b.String()
}
