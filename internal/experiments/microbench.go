package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// This file is the data-plane microbenchmark harness behind
// `gvmbench -benchjson`: it measures the hot paths the parallel-executor
// PR attacked (functional kernel execution, control-plane framing,
// shared-memory copies, the simulator calendar) with testing.Benchmark
// and emits machine-readable JSON, so results/BENCH_*.json records how
// the numbers moved release over release. The same workloads exist as
// ordinary benchmarks in bench_test.go for interactive `go test -bench`.

// MicroBenchResult is one measured hot-path operation.
type MicroBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// CyclesPerSec is set by the daemon-throughput results: aggregate
	// full-cycle throughput across all concurrent clients.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// The oversubscription sweep (DaemonOversubBench) fills in tail
	// latency and the residency engine's swap traffic: NsPerOp is then the
	// mean cycle turnaround and P99NsPerOp its 99th percentile.
	P99NsPerOp   float64 `json:"p99_ns_per_op,omitempty"`
	SwapOutBytes int64   `json:"swap_out_bytes,omitempty"`
	SwapInBytes  int64   `json:"swap_in_bytes,omitempty"`
	Evictions    int64   `json:"evictions,omitempty"`
	Restores     int64   `json:"restores,omitempty"`
}

// MicroBenchReport is the JSON document `gvmbench -benchjson` writes.
type MicroBenchReport struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	When       string             `json:"when"`
	Note       string             `json:"note,omitempty"`
	Results    []MicroBenchResult `json:"results"`
	// DaemonMetrics is a metrics.Snapshot of the last daemon-throughput
	// server's registry — the same series /metrics serves — taken after
	// the full client matrix ran against it.
	DaemonMetrics []metrics.Sample `json:"daemon_metrics,omitempty"`
	// Interference is the QoS co-location sweep: solo vs co-located tail
	// latency per scheduling mode plus the weighted fairness races.
	Interference *InterferenceReport `json:"interference,omitempty"`
}

type microArena struct {
	data []byte
	next int64
}

func (m *microArena) Bytes(p cuda.DevPtr, n int64) []byte {
	return m.data[p : int64(p)+n : int64(p)+n]
}

func (m *microArena) alloc(n int64) cuda.DevPtr {
	p := cuda.DevPtr(m.next)
	m.next += (n + 255) &^ 255
	return p
}

func microExecPair(name string, build func(m *microArena) *cuda.Kernel) []MicroBenchResult {
	run := func(label string, ex *cuda.Executor) MicroBenchResult {
		mem := &microArena{data: make([]byte, 64<<20), next: 256}
		k := build(mem)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if ex == nil {
					err = k.RunFunctional(mem)
				} else {
					err = ex.Run(k, mem)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		return MicroBenchResult{
			Name:        name + "/" + label,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	return []MicroBenchResult{
		run("serial", nil),
		run("parallel-4w", cuda.NewExecutor(4)),
	}
}

func microResult(name string, fn func(b *testing.B)) MicroBenchResult {
	r := testing.Benchmark(fn)
	return MicroBenchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// MicroBench measures every data-plane hot path and returns the report.
func MicroBench() MicroBenchReport {
	rep := MicroBenchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		When:       time.Now().UTC().Format(time.RFC3339),
	}
	// Always record the host's parallelism in the note: the absolute
	// numbers (and especially any cross-report comparison) are
	// meaningless without it.
	rep.Note = fmt.Sprintf("host: numcpu=%d gomaxprocs=%d", rep.NumCPU, rep.GOMAXPROCS)
	if runtime.NumCPU() < 2 {
		rep.Note += "; single-CPU host: parallel-executor variants measure pool overhead, not speedup; daemon-cycle client-count scaling is serialized on one core and understates multi-core throughput"
	}

	rep.Results = append(rep.Results, microExecPair("functional-exec-mm", func(m *microArena) *cuda.Kernel {
		const n = 256
		pa, pb, pc := m.alloc(n*n*4), m.alloc(n*n*4), m.alloc(n*n*4)
		av := cuda.Float32s(m, pa, n*n)
		bv := cuda.Float32s(m, pb, n*n)
		for i := range av {
			av[i] = float32(i%13) / 13
			bv[i] = float32(i%11) / 11
		}
		return kernels.NewMM(pa, pb, pc, n)
	})...)
	rep.Results = append(rep.Results, microExecPair("functional-exec-electrostatics", func(m *microArena) *cuda.Kernel {
		const natoms = 2000
		p := kernels.ESParams{GridX: 128, GridY: 64, Spacing: 0.5, Z: 1}
		pa := m.alloc(natoms * 4 * 4)
		po := m.alloc(int64(p.GridX*p.GridY) * 4)
		atoms := cuda.Float32s(m, pa, natoms*4)
		for i := range atoms {
			atoms[i] = float32(i%29) * 0.3
		}
		return kernels.NewElectrostatics(pa, po, natoms, 1, 32, p)
	})...)
	rep.Results = append(rep.Results, microExecPair("functional-exec-blackscholes", func(m *microArena) *cuda.Kernel {
		const n = 100_000
		ps, px, pt := m.alloc(n*4), m.alloc(n*4), m.alloc(n*4)
		pc, pp := m.alloc(n*4), m.alloc(n*4)
		s := cuda.Float32s(m, ps, n)
		x := cuda.Float32s(m, px, n)
		tt := cuda.Float32s(m, pt, n)
		for i := range s {
			s[i] = 5 + float32(i%100)
			x[i] = 1 + float32(i%50)
			tt[i] = 0.25 + float32(i%40)/4
		}
		return kernels.NewBlackScholes(ps, px, pt, pc, pp, n, 4, 60, kernels.DefaultBSParams())
	})...)

	req := transport.Request{
		Verb: "REQ",
		Rank: 3,
		Ref: &workloads.Ref{
			Name:   "vecadd",
			Params: map[string]int{"n": 50_000_000, "grid": 48829},
		},
	}
	rep.Results = append(rep.Results, microResult("ipc-frame-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			var got transport.Request
			if err := json.Unmarshal(buf, &got); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Results = append(rep.Results, microResult("ipc-frame-binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = transport.EncodeRequestBinary(buf[:0], req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := transport.DecodeRequestBinary(buf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	for _, mode := range []string{"file", "mmap"} {
		mode := mode
		rep.Results = append(rep.Results, microResult("shm-copy-"+mode, func(b *testing.B) {
			const n = 1 << 20
			dir, err := os.MkdirTemp("", "gvmbench-shm")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			s, err := shm.NewFile(dir, "bench-seg", n)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if mode == "file" {
				shm.Unmap(s)
			} else if s.Bytes() == nil {
				b.Skip("mmap unavailable")
			}
			src := make([]byte, n)
			dst := make([]byte, n)
			for i := range src {
				src[i] = byte(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.WriteAt(src, 0); err != nil {
					b.Fatal(err)
				}
				if err := s.ReadAt(dst, 0); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	rep.Results = append(rep.Results, microResult("sim-calendar-sched-drain-64", func(b *testing.B) {
		env := sim.NewEnv()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				env.After(sim.Duration(j%16+1)*sim.Microsecond, func() {})
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Results = append(rep.Results, microResult("sim-calendar-same-instant-64", func(b *testing.B) {
		env := sim.NewEnv()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				env.After(0, func() {})
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return rep
}

// WriteMicroBenchJSON runs MicroBench plus the daemon-throughput
// matrices (DaemonBench's transport × clients × pipelining grid,
// DaemonShardBench's shard-count dimension, and DaemonOversubBench's
// memory-oversubscription sweep) and writes the combined report to path,
// embedding the daemon's metrics snapshot alongside the timing results.
func WriteMicroBenchJSON(path string) error {
	rep := MicroBench()
	daemon, snap := DaemonBench()
	rep.Results = append(rep.Results, daemon...)
	rep.Results = append(rep.Results, DaemonShardBench()...)
	rep.Results = append(rep.Results, FedBench()...)
	rep.Results = append(rep.Results, DaemonOversubBench()...)
	rep.DaemonMetrics = snap
	interf, err := InterferenceBench(false)
	if err != nil {
		return fmt.Errorf("interference bench: %w", err)
	}
	rep.Interference = interf
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
