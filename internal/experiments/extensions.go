package experiments

import (
	"fmt"
	"strings"

	"gpuvirt/internal/cluster"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/node"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

// The experiments in this file go beyond the paper's evaluation: they
// quantify the alternatives the paper argues against (remote GPU access,
// related work [11]) and the extension it gestures at (multi-GPU nodes,
// Section VII).

// ClusterRow is one row of the cluster extension experiment.
type ClusterRow struct {
	Setup        string
	TurnaroundMS float64
	NetworkMS    float64
	RemoteProcs  int
}

// ExtensionCluster compares 8 SPMD processes sharing one GPU three ways:
// on the GPU node through the local GVM, and from GPU-less nodes over
// QDR InfiniBand and gigabit Ethernet (rCUDA-style remote access).
func ExtensionCluster() ([]ClusterRow, error) {
	w := workloads.VectorAdd(10_000_000)
	spec := func(node, rank int) *task.Spec { return w.Spec(rank) }
	run := func(name string, cfg cluster.Config, procs int) (ClusterRow, error) {
		env := sim.NewEnv()
		c, err := cluster.New(env, cfg)
		if err != nil {
			return ClusterRow{}, err
		}
		res, err := c.RunJob(procs, spec)
		if err != nil {
			return ClusterRow{}, err
		}
		return ClusterRow{
			Setup:        name,
			TurnaroundMS: res.Turnaround.Seconds() * 1e3,
			NetworkMS:    res.NetworkTime.Seconds() * 1e3,
			RemoteProcs:  res.RemoteProcs,
		}, nil
	}
	var rows []ClusterRow
	for _, c := range []struct {
		name  string
		cfg   cluster.Config
		procs int
	}{
		{"local GVM (paper)", cluster.Config{Nodes: 1, GPUNodes: 1, CoresPerNode: 8, Parties: 8}, 8},
		{"remote, QDR InfiniBand", cluster.Config{Nodes: 9, GPUNodes: 1, CoresPerNode: 1, Interconnect: cluster.QDRInfiniBand()}, 1},
		{"remote, gigabit Ethernet", cluster.Config{Nodes: 9, GPUNodes: 1, CoresPerNode: 1, Interconnect: cluster.GigabitEthernet()}, 1},
	} {
		row, err := run(c.name, c.cfg, c.procs)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: %w", c.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtensionCluster formats the cluster comparison.
func RenderExtensionCluster(rows []ClusterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION. LOCAL VIRTUALIZATION VS REMOTE GPU ACCESS (8 procs, 120 MB/proc)\n")
	fmt.Fprintf(&b, "  %-26s %14s %14s %8s\n", "setup", "turnaround", "on the wire", "remote")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %12.1fms %12.1fms %8d\n", r.Setup, r.TurnaroundMS, r.NetworkMS, r.RemoteProcs)
	}
	return b.String()
}

// MultiGPURow is one GPU-count point of the multi-GPU extension.
type MultiGPURow struct {
	GPUs         int
	TurnaroundMS float64
	Scaling      float64 // vs the 1-GPU turnaround
}

// ExtensionMultiGPU runs 8 device-saturating Electrostatics processes
// against a node of 1, 2 and 4 per-GPU manager shards (least-sessions
// placement; each shard's STR barrier spans the 8/gpus sessions placed
// on it).
func ExtensionMultiGPU() ([]MultiGPURow, error) {
	w := PaperSaturatingWorkload()
	run := func(gpus int) (float64, error) {
		env := sim.NewEnv()
		nd, err := node.New(node.Config{
			GPUs:      gpus,
			Arch:      fermi.TeslaC2070(),
			Parties:   8 / gpus,
			SharedEnv: env,
		})
		if err != nil {
			return 0, err
		}
		if err := nd.Start(); err != nil {
			return 0, err
		}
		var makespan sim.Duration
		errs := make([]error, 8)
		for i := 0; i < 8; i++ {
			i := i
			env.Go(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
				// Clients never pay Tinit (the paper's design): wait out
				// every shard's bring-up before starting the clock.
				for _, sh := range nd.Shards() {
					p.Wait(sh.Mgr.Ready())
				}
				t0 := p.Now()
				v, _, err := nd.Connect(p, w.Spec(i))
				if err != nil {
					errs[i] = err
					return
				}
				if err := v.RunCycle(p, nil, nil); err != nil {
					errs[i] = err
					return
				}
				if d := p.Now().Sub(t0); d > makespan {
					makespan = d
				}
			})
		}
		if err := env.Run(); err != nil {
			return 0, err
		}
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return makespan.Seconds() * 1e3, nil
	}
	var rows []MultiGPURow
	var base float64
	for _, gpus := range []int{1, 2, 4} {
		ms, err := run(gpus)
		if err != nil {
			return nil, fmt.Errorf("multigpu %d: %w", gpus, err)
		}
		if gpus == 1 {
			base = ms
		}
		rows = append(rows, MultiGPURow{GPUs: gpus, TurnaroundMS: ms, Scaling: base / ms})
	}
	return rows, nil
}

// ExtensionNPB runs the two extra NPB kernels (IS, FT at class S) through
// both sharing modes, extending Figures 11-15's evaluation family.
func ExtensionNPB() ([]TurnaroundSeries, error) {
	var out []TurnaroundSeries
	for _, w := range []workloads.Workload{workloads.ClassSIS(), workloads.ClassSFT()} {
		s, err := runSeries(w, MaxProcs)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// PaperSaturatingWorkload returns the Table IV workload that fills the
// whole device (Electrostatics), used by the multi-GPU scaling runs.
func PaperSaturatingWorkload() workloads.Workload {
	return workloads.PaperElectrostatics()
}

// RenderExtensionMultiGPU formats the multi-GPU scaling table.
func RenderExtensionMultiGPU(rows []MultiGPURow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION. MULTI-GPU MANAGER SCALING (8 Electrostatics procs)\n")
	fmt.Fprintf(&b, "  %-6s %14s %10s\n", "GPUs", "turnaround", "scaling")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %12.1fms %9.2fx\n", r.GPUs, r.TurnaroundMS, r.Scaling)
	}
	return b.String()
}
