// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI): Table II (micro-benchmark profiles), Figure 9
// (micro-benchmark turnaround curves), Table III (experimental vs
// theoretical speedups), Figure 10 (virtualization overheads), Table IV
// (application benchmark catalog), Figures 11-15 (per-application
// turnaround curves) and Figure 16 (application speedups at 8 processes).
//
// All experiments run on the deterministic simulator, so every number
// regenerates bit-identically. EXPERIMENTS.md records paper-vs-measured
// for each artifact.
package experiments

import (
	"fmt"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/model"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

// MaxProcs is the node's CPU core count (dual quad-core Xeon X5560),
// which bounds Ntask under SPMD.
const MaxProcs = 8

// Arch returns the evaluation architecture (Tesla C2070).
func Arch() fermi.Arch { return fermi.TeslaC2070() }

// baseConfig builds the harness config for a workload.
func baseConfig(w workloads.Workload, n int) spmd.Config {
	return spmd.Config{
		Arch:       Arch(),
		N:          n,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
	}
}

// TurnaroundSeries is one workload's turnaround-vs-processes curve pair
// (the data behind Figures 9 and 11-15).
type TurnaroundSeries struct {
	Workload string
	N        []int
	VirtMS   []float64
	NoVirtMS []float64
}

// runSeries measures both modes for N = 1..maxN.
func runSeries(w workloads.Workload, maxN int) (TurnaroundSeries, error) {
	s := TurnaroundSeries{Workload: w.Name}
	for n := 1; n <= maxN; n++ {
		cfg := baseConfig(w, n)
		dres, err := spmd.RunDirect(cfg)
		if err != nil {
			return s, fmt.Errorf("%s direct N=%d: %w", w.Name, n, err)
		}
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			return s, fmt.Errorf("%s virt N=%d: %w", w.Name, n, err)
		}
		s.N = append(s.N, n)
		s.NoVirtMS = append(s.NoVirtMS, dres.Turnaround.Seconds()*1e3)
		s.VirtMS = append(s.VirtMS, vres.Turnaround.Seconds()*1e3)
	}
	return s, nil
}

// TableII profiles the two micro-benchmarks, reproducing the paper's
// Table II parameter extraction.
func TableII() ([]model.Params, error) {
	var rows []model.Params
	for _, w := range []workloads.Workload{workloads.PaperVectorAdd(), workloads.PaperEP()} {
		p, err := spmd.Profile(baseConfig(w, MaxProcs))
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", w.Name, err)
		}
		rows = append(rows, p)
	}
	return rows, nil
}

// Figure9 measures turnaround vs process count for the I/O-intensive
// (VectorAdd) and compute-intensive (EP) micro-benchmarks in both modes.
func Figure9() ([]TurnaroundSeries, error) {
	var out []TurnaroundSeries
	for _, w := range []workloads.Workload{workloads.PaperVectorAdd(), workloads.PaperEP()} {
		s, err := runSeries(w, MaxProcs)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// SpeedupRow is one line of Table III or Figure 16.
type SpeedupRow struct {
	Name         string
	Experimental float64
	Theoretical  float64 // equation (5); 0 when not reported
	Deviation    float64 // (theoretical - experimental) / experimental
}

// TableIII compares the measured 8-process speedup against the
// analytical model's equation (5) for both micro-benchmarks.
func TableIII() ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, w := range []workloads.Workload{workloads.PaperVectorAdd(), workloads.PaperEP()} {
		cfg := baseConfig(w, MaxProcs)
		params, err := spmd.Profile(cfg)
		if err != nil {
			return nil, err
		}
		dres, err := spmd.RunDirect(cfg)
		if err != nil {
			return nil, err
		}
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			return nil, err
		}
		exp := dres.Turnaround.Seconds() / vres.Turnaround.Seconds()
		theo := params.Speedup()
		rows = append(rows, SpeedupRow{
			Name:         w.Name,
			Experimental: exp,
			Theoretical:  theo,
			Deviation:    model.Deviation(theo, exp),
		})
	}
	return rows, nil
}

// OverheadPoint is one data-size point of Figure 10.
type OverheadPoint struct {
	DataMB       int     // total data moved per cycle (in + out)
	TurnaroundMS float64 // single-process turnaround through the GVM
	PureGPUMS    float64 // time spent on the GPU in the base layer
	OverheadPct  float64
}

// Figure10 sweeps the vector-add data size and reports the
// virtualization overhead: the gap between single-process turnaround and
// the time spent in the base layer (staging + transfers + kernel), as
// the paper measures it.
func Figure10() ([]OverheadPoint, error) {
	var out []OverheadPoint
	// Vector sizes chosen so total data (2 inputs + 1 output per cycle)
	// sweeps ~25..400 MB, the paper's x-axis.
	for _, mb := range []int{25, 50, 100, 150, 200, 250, 300, 400} {
		elems := mb << 20 / 12 // 12 bytes moved per element
		w := workloads.VectorAdd(elems)
		cfg := baseConfig(w, 1)
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			return nil, err
		}
		pure, err := pureGPUTime(w)
		if err != nil {
			return nil, err
		}
		turn := vres.Turnaround.Seconds() * 1e3
		pureMS := pure.Seconds() * 1e3
		out = append(out, OverheadPoint{
			DataMB:       mb,
			TurnaroundMS: turn,
			PureGPUMS:    pureMS,
			OverheadPct:  (turn - pureMS) / pureMS * 100,
		})
	}
	return out, nil
}

// pureGPUTime measures the base-layer execution time of one task cycle:
// the staging copies into/out of pinned memory plus the pinned transfers
// and the kernel, with no protocol or client copies.
func pureGPUTime(w workloads.Workload) (sim.Duration, error) {
	env := sim.NewEnv()
	dev, err := gpusim.New(env, gpusim.Config{Arch: Arch()})
	if err != nil {
		return 0, err
	}
	spec := w.Spec(0)
	var total sim.Duration
	var runErr error
	env.Go("pure", func(p *sim.Proc) {
		ctx := dev.CreateContext(p)
		ctx.Acquire(p)
		defer ctx.Release()
		devIn := ctx.MustMalloc(max64(spec.InBytes, 1))
		devOut := ctx.MustMalloc(max64(spec.OutBytes, 1))
		pinIn := dev.AllocHost(max64(spec.InBytes, 1), true)
		pinOut := dev.AllocHost(max64(spec.OutBytes, 1), true)
		var scratch []cuda.DevPtr
		ks, err := spec.Build(&task.Buffers{In: devIn, Out: devOut, Alloc: ctx, Scratch: &scratch})
		if err != nil {
			runErr = err
			return
		}
		start := p.Now()
		// Staging copies (shm <-> pinned) are part of the base layer.
		p.Sleep(hostCopy(spec.InBytes))
		if spec.InBytes > 0 {
			ctx.MemcpyH2D(p, devIn, pinIn, spec.InBytes)
		}
		for _, k := range ks {
			if err := ctx.Launch(p, k); err != nil {
				runErr = err
				return
			}
		}
		if spec.OutBytes > 0 {
			ctx.MemcpyD2H(p, pinOut, devOut, spec.OutBytes)
		}
		p.Sleep(hostCopy(spec.OutBytes))
		total = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	return total, runErr
}

func hostCopy(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / 24e9 * 1e9)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AppRow is one line of Table IV, extended with the measured
// compute-to-I/O ratio backing the classification.
type AppRow struct {
	Name        string
	ProblemSize string
	GridSize    int
	Class       workloads.Class
	CompIORatio float64 // measured Tcomp / (Tin + Tout)
	CycleMS     float64 // measured Tin + Tcomp + Tout
}

// TableIV catalogs the five application benchmarks with their measured
// profiles.
func TableIV() ([]AppRow, error) {
	var rows []AppRow
	for _, w := range workloads.PaperApplications() {
		p, err := spmd.Profile(baseConfig(w, MaxProcs))
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", w.Name, err)
		}
		io := p.TdataIn + p.TdataOut
		ratio := 0.0
		if io > 0 {
			ratio = float64(p.Tcomp) / float64(io)
		}
		rows = append(rows, AppRow{
			Name:        w.Name,
			ProblemSize: w.ProblemSize,
			GridSize:    w.GridSize,
			Class:       w.Class,
			CompIORatio: ratio,
			CycleMS:     p.CycleTime().Seconds() * 1e3,
		})
	}
	return rows, nil
}

// Figures11to15 measures the five applications' turnaround curves.
func Figures11to15() ([]TurnaroundSeries, error) {
	var out []TurnaroundSeries
	for _, w := range workloads.PaperApplications() {
		s, err := runSeries(w, MaxProcs)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure16 reports each application's speedup with 8 processes.
func Figure16() ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, w := range workloads.PaperApplications() {
		cfg := baseConfig(w, MaxProcs)
		dres, err := spmd.RunDirect(cfg)
		if err != nil {
			return nil, err
		}
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedupRow{
			Name:         w.Name,
			Experimental: dres.Turnaround.Seconds() / vres.Turnaround.Seconds(),
		})
	}
	return rows, nil
}
