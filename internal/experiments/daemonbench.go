package experiments

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"gpuvirt/internal/ipc"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/workloads"
)

// This file is the daemon-throughput harness behind `gvmbench -benchjson`:
// it measures full SND+STR+STP+RCV cycles per second against a live gvmd
// server at 1/2/4/8 concurrent clients over every transport, pipelined
// (one BAT round trip per cycle) versus serial (four round trips). The
// numbers quantify the owner-goroutine critical-section work: with the
// data plane staged off-owner and verbs batched, adding clients should
// add throughput instead of queueing delay — caveated on multi-core
// hosts only (see MicroBenchReport.Note on single-CPU containers).

// daemonBenchN is the per-client payload size (vecadd n): 1024 floats in
// each of two inputs, 4 KiB out — small enough that the control plane,
// not memcpy, dominates.
const daemonBenchN = 1024

// DaemonBench measures daemon cycle throughput for every transport ×
// client count × pipelining mode and returns one result per combination.
// Cycle latency is reported as ns/op per *round* of one cycle on every
// client; CyclesPerSec is the aggregate across clients. The second
// return value is the final transport's daemon metrics registry,
// snapshotted just before that server shuts down, so the bench report
// carries the same counters a live /metrics scrape would show.
func DaemonBench() ([]MicroBenchResult, []metrics.Sample) {
	var out []MicroBenchResult
	var snap []metrics.Sample
	for _, tr := range []string{"inproc", "unix", "tcp", "ring"} {
		addr, cleanup, err := daemonBenchAddr(tr)
		if err != nil {
			out = append(out, MicroBenchResult{Name: "daemon-cycle-" + tr, NsPerOp: -1})
			continue
		}
		shmDir := shmBenchDir()
		srv, err := ipc.NewServer(ipc.ServerConfig{
			Listen:     []string{addr},
			Functional: true,
			ShmDir:     shmDir,
		})
		if err != nil {
			cleanup()
			out = append(out, MicroBenchResult{Name: "daemon-cycle-" + tr, NsPerOp: -1})
			continue
		}
		for _, clients := range []int{1, 2, 4, 8} {
			for _, mode := range []string{"pipelined", "serial"} {
				name := fmt.Sprintf("daemon-cycle-%s-c%d/%s", tr, clients, mode)
				r, err := daemonBenchRun(srv.Addr(), shmDir, clients, mode == "serial")
				if err != nil {
					out = append(out, MicroBenchResult{Name: name, NsPerOp: -1})
					continue
				}
				res := MicroBenchResult{
					Name:        name,
					NsPerOp:     float64(r.NsPerOp()),
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
				}
				if r.NsPerOp() > 0 {
					res.CyclesPerSec = float64(clients) * 1e9 / float64(r.NsPerOp())
				}
				out = append(out, res)
			}
		}
		snap = srv.Metrics().Snapshot()
		srv.Close()
		cleanup()
		if shmDir != "" {
			os.RemoveAll(shmDir)
		}
	}
	return out, snap
}

// DaemonShardBench measures how daemon cycle throughput moves with the
// shard (GPU) count: 1/2/4 shards × 1/4/8 pipelined clients over inproc
// (the transport with the least connection overhead, so the owner-layer
// parallelism is what's measured). Placement is the default
// least-sessions, so clients spread evenly; each shard runs its own
// owner goroutine, so on a multi-core host throughput should scale with
// shards until clients-per-shard hits 1 (see MicroBenchReport.Note for
// the single-CPU caveat).
func DaemonShardBench() []MicroBenchResult {
	var out []MicroBenchResult
	for _, gpus := range []int{1, 2, 4} {
		shmDir := shmBenchDir()
		srv, err := ipc.NewServer(ipc.ServerConfig{
			Listen:     []string{fmt.Sprintf("inproc://gvmbench-shards-%d", gpus)},
			Functional: true,
			ShmDir:     shmDir,
			GPUs:       gpus,
		})
		if err != nil {
			out = append(out, MicroBenchResult{Name: fmt.Sprintf("daemon-cycle-shards-g%d", gpus), NsPerOp: -1})
			continue
		}
		for _, clients := range []int{1, 4, 8} {
			name := fmt.Sprintf("daemon-cycle-shards-g%d-c%d/pipelined", gpus, clients)
			r, err := daemonBenchRun(srv.Addr(), shmDir, clients, false)
			if err != nil {
				out = append(out, MicroBenchResult{Name: name, NsPerOp: -1})
				continue
			}
			res := MicroBenchResult{
				Name:        name,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if r.NsPerOp() > 0 {
				res.CyclesPerSec = float64(clients) * 1e9 / float64(r.NsPerOp())
			}
			out = append(out, res)
		}
		srv.Close()
		if shmDir != "" {
			os.RemoveAll(shmDir)
		}
	}
	return out
}

func shmBenchDir() string {
	dir, err := os.MkdirTemp("", "gvmbench-daemon")
	if err != nil {
		return ""
	}
	return dir
}

func daemonBenchAddr(tr string) (addr string, cleanup func(), err error) {
	switch tr {
	case "inproc":
		return "inproc://gvmbench-daemon", func() {}, nil
	case "tcp":
		return "tcp://127.0.0.1:0", func() {}, nil
	case "unix", "ring":
		f, err := os.CreateTemp("", "gvmbench-*.sock")
		if err != nil {
			return "", nil, err
		}
		path := f.Name()
		f.Close()
		os.Remove(path)
		return tr + "://" + path, func() { os.Remove(path) }, nil
	}
	return "", nil, fmt.Errorf("unknown transport %q", tr)
}

// daemonBenchRun times rounds in which every client completes one full
// cycle concurrently (sessions and connections persist across rounds, as
// a long-running SPMD application's would).
func daemonBenchRun(addr, shmDir string, clients int, serial bool) (testing.BenchmarkResult, error) {
	var setupErr error
	r := testing.Benchmark(func(b *testing.B) {
		cs := make([]*ipc.Client, clients)
		sess := make([]*ipc.Session, clients)
		ins := make([][]byte, clients)
		outs := make([][]byte, clients)
		defer func() {
			for i := range cs {
				if sess[i] != nil {
					sess[i].Release()
				}
				if cs[i] != nil {
					cs[i].Close()
				}
			}
		}()
		for i := range cs {
			c, err := ipc.DialOptions(addr, ipc.Options{ShmDir: shmDir, NoPipeline: serial})
			if err != nil {
				setupErr = err
				b.Skip(err)
			}
			cs[i] = c
			s, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": daemonBenchN}}, 0)
			if err != nil {
				setupErr = err
				b.Skip(err)
			}
			sess[i] = s
			ins[i] = make([]byte, s.InBytes())
			outs[i] = make([]byte, s.OutBytes())
			if err := s.RunCycle(ins[i], outs[i]); err != nil { // warm up
				setupErr = err
				b.Skip(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = sess[i].RunCycle(ins[i], outs[i])
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return r, setupErr
}
