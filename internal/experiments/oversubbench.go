package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/ipc"
	"gpuvirt/internal/workloads"
)

// This file is the oversubscription sweep behind `gvmbench -benchjson`:
// it packs sessions whose arenas total 1x/2x/4x of one GPU's memory onto
// a deliberately tiny card and measures what the residency engine costs
// — swap traffic (gvm_swap_bytes_total) and the turnaround-time tail
// (p99) — as the overcommit factor grows. At 1x nothing should swap; at
// 2x and 4x every cycle lands on an evicted session and pays a
// transparent restore, so the p99/mean gap is the eviction penalty the
// virtual-device-memory layer trades for admitting the extra sessions.

// oversubN is the per-session vecadd size: 32 KiB in + 16 KiB out of
// arenas, so two sessions exactly fill the 96 KiB bench card.
const oversubN = 4096

const oversubSessionBytes = 3 * 4 * oversubN // two input arenas + one output

// oversubCycles is how many timed cycles each session runs; with up to 8
// sessions that yields enough samples for a stable-ish p99 while keeping
// `make bench` fast.
const oversubCycles = 40

// DaemonOversubBench boots one tiny-card daemon per oversubscription
// factor (sessions totaling 1x, 2x, 4x device memory, admitted via
// Overcommit=factor), runs every session's cycles concurrently, and
// reports mean and p99 cycle turnaround plus the swap counters from the
// daemon's own metrics registry.
func DaemonOversubBench() []MicroBenchResult {
	var out []MicroBenchResult
	for _, factor := range []int{1, 2, 4} {
		name := fmt.Sprintf("daemon-oversub-%dx", factor)
		res, err := oversubRun(factor)
		if err != nil {
			out = append(out, MicroBenchResult{Name: name, NsPerOp: -1})
			continue
		}
		res.Name = name
		out = append(out, res)
	}
	return out
}

func oversubRun(factor int) (MicroBenchResult, error) {
	arch := fermi.TeslaC2070()
	// The card fits exactly two sessions; the extra page covers the
	// allocator's reserved null-address alignment slot.
	arch.MemBytes = 2*oversubSessionBytes + 4096
	sessions := 2 * factor
	shmDir, err := os.MkdirTemp("", "gvmbench-oversub")
	if err != nil {
		return MicroBenchResult{}, err
	}
	defer os.RemoveAll(shmDir)
	srv, err := ipc.NewServer(ipc.ServerConfig{
		Listen:     []string{fmt.Sprintf("inproc://gvmbench-oversub-%dx", factor)},
		Functional: true,
		ShmDir:     shmDir,
		Arch:       arch,
		Overcommit: float64(factor),
	})
	if err != nil {
		return MicroBenchResult{}, err
	}
	defer srv.Close()

	cs := make([]*ipc.Client, sessions)
	sess := make([]*ipc.Session, sessions)
	defer func() {
		for i := range cs {
			if sess[i] != nil {
				sess[i].Release()
			}
			if cs[i] != nil {
				cs[i].Close()
			}
		}
	}()
	for i := range cs {
		c, err := ipc.Dial(srv.Addr(), shmDir)
		if err != nil {
			return MicroBenchResult{}, err
		}
		cs[i] = c
		s, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": oversubN}}, 0)
		if err != nil {
			return MicroBenchResult{}, err
		}
		sess[i] = s
	}

	lat := make([][]time.Duration, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := make([]byte, sess[i].InBytes())
			outBuf := make([]byte, sess[i].OutBytes())
			for j := range in {
				in[j] = byte(i + j)
			}
			if err := sess[i].RunCycle(in, outBuf); err != nil { // warm up
				errs[i] = err
				return
			}
			lat[i] = make([]time.Duration, 0, oversubCycles)
			for c := 0; c < oversubCycles; c++ {
				t0 := time.Now()
				if err := sess[i].RunCycle(in, outBuf); err != nil {
					errs[i] = err
					return
				}
				lat[i] = append(lat[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MicroBenchResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res := MicroBenchResult{
		NsPerOp:    float64(sum.Nanoseconds()) / float64(len(all)),
		P99NsPerOp: float64(all[len(all)*99/100].Nanoseconds()),
	}
	if res.NsPerOp > 0 {
		res.CyclesPerSec = float64(sessions) * 1e9 / res.NsPerOp
	}
	for _, s := range srv.Metrics().Snapshot() {
		switch s.Name {
		case "gvm_swap_bytes_total":
			if s.Labels["dir"] == "out" {
				res.SwapOutBytes += s.Value
			} else {
				res.SwapInBytes += s.Value
			}
		case "gvm_evictions_total":
			res.Evictions += s.Value
		case "gvm_restores_total":
			res.Restores += s.Value
		}
	}
	return res, nil
}

// oversubSwapped is used by tests: an overcommitted run must actually
// exercise the residency engine, a 1x run must not.
func oversubSwapped(r MicroBenchResult) bool { return r.Evictions > 0 && r.Restores > 0 }
