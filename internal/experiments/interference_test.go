package experiments

import "testing"

// TestInterferenceShort runs the CI-sized interference experiment and
// asserts the PR's acceptance criteria: under weighted-fair scheduling
// the latency tenant's co-located p99 stays within 2x of solo while the
// FIFO baseline exceeds 2x, batch throughput gives up at most 15%, the
// weighted fairness race splits 1:2:4 almost exactly, and every run's
// functional output is byte-identical.
func TestInterferenceShort(t *testing.T) {
	rep, err := InterferenceBench(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FunctionalMatch {
		t.Error("functional outputs diverged across scheduling modes")
	}
	byMode := map[string]InterferenceRun{}
	for _, r := range rep.Runs {
		byMode[r.Mode] = r
	}
	fifo, ok := byMode["fifo"]
	if !ok {
		t.Fatal("no fifo run in report")
	}
	weighted, ok := byMode["weighted-w8"]
	if !ok {
		t.Fatal("no weighted-w8 run in report")
	}
	if fifo.P99VsSolo <= 2 {
		t.Errorf("FIFO co-located p99 = %.2fx solo, expected the baseline to exceed 2x", fifo.P99VsSolo)
	}
	if weighted.P99VsSolo > 2 {
		t.Errorf("weighted co-located p99 = %.2fx solo, want <= 2x", weighted.P99VsSolo)
	}
	if weighted.BatchVsFIFO < 0.85 {
		t.Errorf("weighted batch throughput = %.3fx FIFO, want >= 0.85x (<= 15%% loss)", weighted.BatchVsFIFO)
	}
	if weighted.Preemptions == 0 {
		t.Error("weighted run recorded no wave-boundary preemptions")
	}
	if fifo.Preemptions != 0 {
		t.Errorf("FIFO run recorded %d preemptions, want 0 (preemption disabled)", fifo.Preemptions)
	}

	var fairFIFO, fairWeighted *FairnessRun
	for i := range rep.Fairness {
		switch rep.Fairness[i].Mode {
		case "fifo":
			fairFIFO = &rep.Fairness[i]
		case "weighted":
			fairWeighted = &rep.Fairness[i]
		}
	}
	if fairFIFO == nil || fairWeighted == nil {
		t.Fatal("missing fairness runs")
	}
	if fairWeighted.JainIndex < 0.95 {
		t.Errorf("weighted Jain index = %.3f, want >= 0.95", fairWeighted.JainIndex)
	}
	if fairWeighted.JainIndex <= fairFIFO.JainIndex {
		t.Errorf("weighted Jain index %.3f not better than FIFO's %.3f",
			fairWeighted.JainIndex, fairFIFO.JainIndex)
	}
}
