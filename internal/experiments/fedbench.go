package experiments

import (
	"fmt"
	"os"

	"gpuvirt/internal/fed"
	"gpuvirt/internal/ipc"
)

// FedBench measures federated daemon cycle throughput: full pipelined
// SND+STR+STP+RCV cycles per second through a gvmfed router fronting
// 1 or 2 gvmd nodes, at 1/4/8 concurrent clients, next to the direct
// (router-free) numbers from DaemonBench. The delta quantifies the
// proxy hop — one extra frame decode/encode pair and an id rewrite per
// verb, with the data plane forced inline — and the 2-node rows show
// node-level least-sessions placement spreading the client load.
func FedBench() []MicroBenchResult {
	var out []MicroBenchResult
	for _, nodes := range []int{1, 2} {
		out = append(out, fedBenchNodes(nodes)...)
	}
	return out
}

func fedBenchNodes(nodes int) []MicroBenchResult {
	fail := func() []MicroBenchResult {
		return []MicroBenchResult{{Name: fmt.Sprintf("fed-cycle-n%d", nodes), NsPerOp: -1}}
	}
	backends := make([]string, nodes)
	srvs := make([]*ipc.Server, nodes)
	defer func() {
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}()
	for i := range backends {
		shmDir := shmBenchDir()
		srv, err := ipc.NewServer(ipc.ServerConfig{
			Listen:     []string{fmt.Sprintf("inproc://gvmbench-fed-n%d-%d", nodes, i)},
			Functional: true,
			ShmDir:     shmDir,
		})
		if err != nil {
			return fail()
		}
		if shmDir != "" {
			defer os.RemoveAll(shmDir)
		}
		srvs[i] = srv
		backends[i] = srv.Addr()
	}
	router, err := fed.New(fed.Config{Backends: backends, Placement: "least-sessions"})
	if err != nil {
		return fail()
	}
	if err := router.Start([]string{fmt.Sprintf("inproc://gvmbench-fed-n%d", nodes)}); err != nil {
		return fail()
	}
	defer router.Close()

	var out []MicroBenchResult
	for _, clients := range []int{1, 4, 8} {
		name := fmt.Sprintf("fed-cycle-n%d-c%d/pipelined", nodes, clients)
		r, err := daemonBenchRun(router.Addr(), "", clients, false)
		if err != nil {
			out = append(out, MicroBenchResult{Name: name, NsPerOp: -1})
			continue
		}
		res := MicroBenchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.NsPerOp() > 0 {
			res.CyclesPerSec = float64(clients) * 1e9 / float64(r.NsPerOp())
		}
		out = append(out, res)
	}
	return out
}
