package experiments

import "testing"

// TestOversubSweepSwapBehavior pins the sweep's defining property: at 1x
// the card fits every session and the residency engine stays idle, while
// an overcommitted run must evict and restore (and account the swapped
// bytes) to serve sessions beyond device memory.
func TestOversubSweepSwapBehavior(t *testing.T) {
	base, err := oversubRun(1)
	if err != nil {
		t.Fatal(err)
	}
	if oversubSwapped(base) || base.SwapOutBytes != 0 || base.SwapInBytes != 0 {
		t.Fatalf("1x run swapped: %+v", base)
	}
	if base.NsPerOp <= 0 || base.P99NsPerOp < base.NsPerOp {
		t.Fatalf("1x latencies malformed: mean=%v p99=%v", base.NsPerOp, base.P99NsPerOp)
	}
	over, err := oversubRun(2)
	if err != nil {
		t.Fatal(err)
	}
	if !oversubSwapped(over) {
		t.Fatalf("2x run never exercised the residency engine: %+v", over)
	}
	if over.SwapOutBytes == 0 || over.SwapInBytes == 0 {
		t.Fatalf("2x run swapped without accounting bytes: %+v", over)
	}
}
