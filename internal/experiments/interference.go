package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/sim"
)

// This file is the QoS interference experiment behind `gvmbench
// -benchjson`: a latency-sensitive tenant issuing a short kernel on a
// fixed period is co-located with backlogged batch tenants on a GPU
// whose concurrency window is deliberately small (2 kernels, the
// contended case). Under FIFO scheduling the latency tenant queues
// behind whole batch kernels and its co-located p99 blows past 2x its
// solo latency; under weighted-fair scheduling with wave-boundary
// preemption the batch kernels' resident waves drain (never killed) and
// the latency tenant lands near its solo latency, while batch
// throughput gives up only the capacity the latency tenant actually
// uses. All runs execute the latency tenant's kernel functionally and
// the outputs are verified against a CPU reference and digest-compared
// across scheduling modes: QoS is pure scheduling policy, results are
// byte-identical.

// InterferenceRun is one co-location (or solo) measurement.
type InterferenceRun struct {
	// Mode is "solo", "fifo", or "weighted-w<N>".
	Mode string `json:"mode"`
	// LatencyWeight is the latency tenant's scheduling weight (batch
	// tenants always run at weight 1).
	LatencyWeight int `json:"latency_weight"`
	// Latency-tenant cycle turnaround in virtual milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// P99VsSolo is P99MS over the solo run's P99MS (1.0 = no
	// interference); 0 on the solo run itself.
	P99VsSolo float64 `json:"p99_vs_solo,omitempty"`
	// BatchKernels counts batch kernels completed over the run's horizon;
	// BatchVsFIFO is this run's batch rate over the FIFO baseline's (1.0
	// = no throughput cost).
	BatchKernels int64   `json:"batch_kernels,omitempty"`
	BatchVsFIFO  float64 `json:"batch_vs_fifo,omitempty"`
	// Preemptions is the device's wave-boundary preemption count.
	Preemptions int64 `json:"preemptions"`
	// OutputDigest is an FNV-64a digest of every latency-tenant output
	// buffer, cycle by cycle — identical across modes by construction.
	OutputDigest string `json:"output_digest"`
}

// FairnessRun measures how SM throughput divides among three backlogged
// tenants asking for a 1:2:4 split.
type FairnessRun struct {
	// Mode is "fifo" (scheduler ignores the requested weights) or
	// "weighted".
	Mode    string  `json:"mode"`
	Weights []int   `json:"weights"`
	Kernels []int64 `json:"kernels"`
	// JainIndex is Jain's fairness index over weight-normalized
	// throughput: 1.0 means each tenant's share is exactly proportional
	// to its weight.
	JainIndex float64 `json:"jain_index"`
}

// InterferenceReport is the QoS section of the benchmark JSON.
type InterferenceReport struct {
	Short         bool              `json:"short,omitempty"`
	LatencyCycles int               `json:"latency_cycles"`
	PeriodMS      float64           `json:"period_ms"`
	Runs          []InterferenceRun `json:"runs"`
	Fairness      []FairnessRun     `json:"fairness"`
	// FunctionalMatch is true iff every latency-tenant output matched the
	// CPU reference and every run produced the same digest.
	FunctionalMatch bool `json:"functional_match"`
}

// Latency tenant: one wave of 4-warp blocks, under-occupied, so its solo
// rate is the latency-hiding floor and co-residents cannot slow it once
// it holds its SM slots.
const (
	interfHotGrid   = 14 // one block per SM
	interfHotBlock  = 128
	interfHotCycles = 1e6
	interfHotN      = interfHotGrid * interfHotBlock
)

// Batch tenants: device-filling 8-warp blocks in short waves, so a
// preempted kernel's resident wave drains quickly relative to the
// latency tenant's own runtime.
const (
	interfBatchGrid   = 672
	interfBatchBlock  = 256
	interfBatchCycles = 2e4
)

type interfParams struct {
	latWeight    int
	preemptRatio float64 // gpusim.Config semantics: 0 default, <0 disabled
	batchTenants int
	cycles       int
	period       sim.Duration
}

type interfTrial struct {
	latencies    []sim.Duration
	epoch        sim.Time // virtual instant the tenants started (after device init)
	horizon      sim.Time // virtual instant the latency tenant finished
	batchKernels int64
	preemptions  int64
	digest       uint64
	verified     bool
}

// batchRate is the run's batch kernel throughput per virtual second.
func (t interfTrial) batchRate() float64 {
	span := t.horizon.Sub(t.epoch).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(t.batchKernels) / span
}

func interfRun(p interfParams) (interfTrial, error) {
	env := sim.NewEnv()
	arch := Arch()
	arch.MaxConcurrentKernels = 2
	dev, err := gpusim.New(env, gpusim.Config{
		Arch:         arch,
		Functional:   true,
		PreemptRatio: p.preemptRatio,
	})
	if err != nil {
		return interfTrial{}, err
	}
	var (
		res  interfTrial
		stop bool
		errs []error
	)
	res.verified = true

	// One context serves every tenant, the way the GVM manager fronts all
	// of a GPU's sessions through its single context: Context.Acquire is a
	// whole-device mutex, so per-tenant contexts would serialize. QoS
	// isolation between the tenants comes from per-launch weights.
	env.Go("main", func(pr *sim.Proc) {
		c := dev.CreateContext(pr)
		c.Acquire(pr)
		// Device and context initialization cost virtual time (the paper's
		// CUDA init overhead), so the arrival schedule is anchored here,
		// not at t=0.
		epoch := pr.Now()
		res.epoch = epoch
		tenants := 1 + p.batchTenants
		allDone := env.NewEvent()
		finish := func() {
			if tenants--; tenants == 0 {
				allDone.Fire(nil)
			}
		}

		env.Go("latency", func(pr *sim.Proc) {
			defer finish()
			defer func() { stop = true }()
			a := c.MustMalloc(interfHotN * 4)
			b := c.MustMalloc(interfHotN * 4)
			out := c.MustMalloc(interfHotN * 4)
			ha := make([]float32, interfHotN)
			hb := make([]float32, interfHotN)
			for i := range ha {
				ha[i] = float32(i%251) * 0.5
				hb[i] = float32(i%97) * 0.25
			}
			c.MemcpyH2D(pr, a, gpusim.WrapHost(cuda.HostFloat32Bytes(ha), false), interfHotN*4)
			c.MemcpyH2D(pr, b, gpusim.WrapHost(cuda.HostFloat32Bytes(hb), false), interfHotN*4)
			hout := make([]float32, interfHotN)
			h := fnv.New64a()
			for cy := 0; cy < p.cycles; cy++ {
				// Open-loop arrivals: cycle cy fires at epoch+cy*period
				// regardless of how long earlier cycles took, so every mode
				// sees the same offered load over the same horizon.
				if next := epoch.Add(sim.Duration(cy) * p.period); pr.Now() < next {
					pr.Sleep(next.Sub(pr.Now()))
				}
				scale := float32(cy%7 + 1)
				k := &cuda.Kernel{
					Name: "hot", Grid: cuda.Dim(interfHotGrid), Block: cuda.Dim(interfHotBlock),
					CyclesPerThread: interfHotCycles,
					Args:            []any{a, b, out, interfHotN},
					Func: func(bc *cuda.BlockCtx) {
						av := cuda.Float32s(bc.Mem, bc.Ptr(0), bc.Int(3))
						bv := cuda.Float32s(bc.Mem, bc.Ptr(1), bc.Int(3))
						ov := cuda.Float32s(bc.Mem, bc.Ptr(2), bc.Int(3))
						base := bc.GlobalBase()
						for t := 0; t < bc.BlockDim.X; t++ {
							if i := base + t; i < bc.Int(3) {
								ov[i] = av[i] + scale*bv[i]
							}
						}
					},
				}
				start := pr.Now()
				ev, err := c.LaunchAsyncOpts(pr, k, gpusim.LaunchOptions{Weight: p.latWeight})
				if err != nil {
					errs = append(errs, err)
					return
				}
				pr.Wait(ev)
				res.latencies = append(res.latencies, pr.Now().Sub(start))
				c.MemcpyD2H(pr, gpusim.WrapHost(cuda.HostFloat32Bytes(hout), false), out, interfHotN*4)
				for i, v := range hout {
					if v != ha[i]+scale*hb[i] {
						res.verified = false
						break
					}
				}
				h.Write(cuda.HostFloat32Bytes(hout))
			}
			res.digest = h.Sum64()
			res.horizon = pr.Now()
		})

		for t := 0; t < p.batchTenants; t++ {
			env.Go(fmt.Sprintf("batch%d", t), func(pr *sim.Proc) {
				defer finish()
				k := &cuda.Kernel{
					Name: "batch", Grid: cuda.Dim(interfBatchGrid), Block: cuda.Dim(interfBatchBlock),
					CyclesPerThread: interfBatchCycles,
				}
				for !stop {
					if err := c.Launch(pr, k); err != nil {
						errs = append(errs, err)
						return
					}
					res.batchKernels++
				}
			})
		}

		pr.Wait(allDone)
		c.Release()
	})

	if err := env.Run(); err != nil {
		return interfTrial{}, err
	}
	if len(errs) > 0 {
		return interfTrial{}, errs[0]
	}
	res.preemptions = dev.Preemptions()
	return res, nil
}

// fairnessRun races three backlogged batch tenants asking for weights ws
// for dur of virtual time. honorWeights=false launches everything at
// weight 1 (the FIFO baseline) while still normalizing throughput by the
// requested weights, so its Jain index shows what ignoring weights costs.
func fairnessRun(ws []int, honorWeights bool, dur sim.Duration) (FairnessRun, error) {
	env := sim.NewEnv()
	dev, err := gpusim.New(env, gpusim.Config{Arch: Arch()})
	if err != nil {
		return FairnessRun{}, err
	}
	done := make([]int64, len(ws))
	var errs []error
	// As in interfRun, the tenants share one context: contexts serialize
	// at the device arbiter, launches within a context schedule by weight.
	env.Go("main", func(pr *sim.Proc) {
		c := dev.CreateContext(pr)
		c.Acquire(pr)
		// Anchor the race window after device/context init, which costs
		// virtual time.
		end := pr.Now().Add(dur)
		remaining := len(ws)
		allDone := env.NewEvent()
		for t, w := range ws {
			t, w := t, w
			env.Go(fmt.Sprintf("tenant%d", t), func(pr *sim.Proc) {
				defer func() {
					if remaining--; remaining == 0 {
						allDone.Fire(nil)
					}
				}()
				k := &cuda.Kernel{
					Name: fmt.Sprintf("fair%d", t), Grid: cuda.Dim(interfBatchGrid / 4), Block: cuda.Dim(interfBatchBlock),
					CyclesPerThread: interfBatchCycles,
				}
				lw := w
				if !honorWeights {
					lw = 1
				}
				for pr.Now() < end {
					ev, err := c.LaunchAsyncOpts(pr, k, gpusim.LaunchOptions{Weight: lw})
					if err != nil {
						errs = append(errs, err)
						return
					}
					pr.Wait(ev)
					done[t]++
				}
			})
		}
		pr.Wait(allDone)
		c.Release()
	})
	if err := env.Run(); err != nil {
		return FairnessRun{}, err
	}
	if len(errs) > 0 {
		return FairnessRun{}, errs[0]
	}
	mode := "weighted"
	if !honorWeights {
		mode = "fifo"
	}
	return FairnessRun{
		Mode:      mode,
		Weights:   append([]int(nil), ws...),
		Kernels:   done,
		JainIndex: jain(done, ws),
	}, nil
}

// jain computes Jain's fairness index over weight-normalized throughput
// x_i = kernels_i / weight_i: (sum x)^2 / (n * sum x^2).
func jain(done []int64, ws []int) float64 {
	var sum, sumSq float64
	for i, d := range done {
		x := float64(d) / float64(ws[i])
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(done)) * sumSq)
}

func latPercentile(lat []sim.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]sim.Duration(nil), lat...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	rank := int(q*float64(len(s))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return float64(s[rank]) / 1e6
}

func latMean(lat []sim.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, d := range lat {
		sum += d
	}
	return float64(sum) / float64(len(lat)) / 1e6
}

// InterferenceBench runs the co-location sweep: a solo latency baseline,
// the FIFO co-located baseline (weights ignored, preemption disabled),
// and weighted-fair co-location at latency weights 2/4/8, plus the
// 1:2:4 fairness races. Short mode trims cycles and the sweep for CI.
func InterferenceBench(short bool) (*InterferenceReport, error) {
	cycles, period := 120, 160*sim.Millisecond
	sweep := []int{2, 4, 8}
	fairDur := sim.Second
	if short {
		cycles, sweep, fairDur = 40, []int{8}, 300*sim.Millisecond
	}
	rep := &InterferenceReport{
		Short:           short,
		LatencyCycles:   cycles,
		PeriodMS:        float64(period) / 1e6,
		FunctionalMatch: true,
	}

	solo, err := interfRun(interfParams{latWeight: 1, batchTenants: 0, cycles: cycles, period: period})
	if err != nil {
		return nil, fmt.Errorf("interference solo: %w", err)
	}
	soloP99 := latPercentile(solo.latencies, 0.99)
	rep.Runs = append(rep.Runs, InterferenceRun{
		Mode: "solo", LatencyWeight: 1,
		P50MS: latPercentile(solo.latencies, 0.5), P99MS: soloP99, MeanMS: latMean(solo.latencies),
		OutputDigest: fmt.Sprintf("%016x", solo.digest),
	})
	rep.FunctionalMatch = rep.FunctionalMatch && solo.verified

	fifo, err := interfRun(interfParams{latWeight: 1, preemptRatio: -1, batchTenants: 2, cycles: cycles, period: period})
	if err != nil {
		return nil, fmt.Errorf("interference fifo: %w", err)
	}
	fifoRate := fifo.batchRate()
	rep.Runs = append(rep.Runs, InterferenceRun{
		Mode: "fifo", LatencyWeight: 1,
		P50MS: latPercentile(fifo.latencies, 0.5), P99MS: latPercentile(fifo.latencies, 0.99),
		MeanMS:       latMean(fifo.latencies),
		P99VsSolo:    latPercentile(fifo.latencies, 0.99) / soloP99,
		BatchKernels: fifo.batchKernels, BatchVsFIFO: 1,
		Preemptions:  fifo.preemptions,
		OutputDigest: fmt.Sprintf("%016x", fifo.digest),
	})
	rep.FunctionalMatch = rep.FunctionalMatch && fifo.verified && fifo.digest == solo.digest

	for _, w := range sweep {
		tr, err := interfRun(interfParams{latWeight: w, batchTenants: 2, cycles: cycles, period: period})
		if err != nil {
			return nil, fmt.Errorf("interference weighted w=%d: %w", w, err)
		}
		rate := tr.batchRate()
		rep.Runs = append(rep.Runs, InterferenceRun{
			Mode: fmt.Sprintf("weighted-w%d", w), LatencyWeight: w,
			P50MS: latPercentile(tr.latencies, 0.5), P99MS: latPercentile(tr.latencies, 0.99),
			MeanMS:       latMean(tr.latencies),
			P99VsSolo:    latPercentile(tr.latencies, 0.99) / soloP99,
			BatchKernels: tr.batchKernels, BatchVsFIFO: rate / fifoRate,
			Preemptions:  tr.preemptions,
			OutputDigest: fmt.Sprintf("%016x", tr.digest),
		})
		rep.FunctionalMatch = rep.FunctionalMatch && tr.verified && tr.digest == solo.digest
	}

	for _, honor := range []bool{false, true} {
		fr, err := fairnessRun([]int{1, 2, 4}, honor, fairDur)
		if err != nil {
			return nil, fmt.Errorf("fairness honor=%v: %w", honor, err)
		}
		rep.Fairness = append(rep.Fairness, fr)
	}
	return rep, nil
}
