package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableIIReproducesPaper(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	va, ep := rows[0], rows[1]
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %.3f, want ~%.3f (Table II)", name, got, want)
		}
	}
	within("vecadd Tinit(ms)", va.Tinit.Seconds()*1e3, 1519.386, 0.01)
	within("vecadd Tdata_in(ms)", va.TdataIn.Seconds()*1e3, 135.874, 0.03)
	within("vecadd Tdata_out(ms)", va.TdataOut.Seconds()*1e3, 66.656, 0.03)
	within("vecadd Tctx(ms)", va.TctxSwitch.Seconds()*1e3, 148.226, 0.001)
	within("ep Tcomp(ms)", ep.Tcomp.Seconds()*1e3, 8951.346, 0.02)
	within("ep Tctx(ms)", ep.TctxSwitch.Seconds()*1e3, 220.599, 0.001)

	out := RenderTableII(rows)
	for _, label := range []string{"Tinit", "Tdata_in", "Tcomp", "Tdata_out", "Tctx_switch", "VectorAdd", "EP"} {
		if !strings.Contains(out, label) {
			t.Errorf("rendered Table II missing %q:\n%s", label, out)
		}
	}
}

func TestTableIIIShapeMatchesPaper(t *testing.T) {
	rows, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	va, ep := rows[0], rows[1]
	// Paper Table III: vecadd exp 2.300 / theo 2.721; EP exp 7.394 /
	// theo 8.341. Shapes to hold: theory >= experiment, deviation < 20%,
	// EP speedup ~3-4x the vecadd speedup.
	for _, r := range rows {
		if r.Theoretical < r.Experimental {
			t.Errorf("%s: theoretical %.3f < experimental %.3f; the model must upper-bound", r.Name, r.Theoretical, r.Experimental)
		}
		if r.Deviation < 0 || r.Deviation > 0.20 {
			t.Errorf("%s: deviation %.1f%%, want within [0, 20]%% (Table III)", r.Name, r.Deviation*100)
		}
	}
	if va.Experimental < 2.0 || va.Experimental > 4.0 {
		t.Errorf("vecadd experimental speedup %.2f outside the paper band ~2.3-3.6", va.Experimental)
	}
	if ep.Experimental < 7.0 || ep.Experimental > 8.5 {
		t.Errorf("EP experimental speedup %.2f outside the paper band ~7.4-8.3", ep.Experimental)
	}
	if math.Abs(ep.Theoretical-8.341) > 0.05 {
		t.Errorf("EP theoretical speedup %.3f, paper reports 8.341", ep.Theoretical)
	}
	if !strings.Contains(RenderTableIII(rows), "Theoretical Deviation") {
		t.Error("rendered Table III missing the deviation row")
	}
}

func TestFigure10OverheadBounded(t *testing.T) {
	pts, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 6 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.OverheadPct < 0 {
			t.Errorf("%d MB: negative overhead %.1f%%", p.DataMB, p.OverheadPct)
		}
		// The paper's claim: even at 400 MB the overhead stays under ~25%.
		if p.OverheadPct > 25 {
			t.Errorf("%d MB: overhead %.1f%% exceeds the paper's <25%% bound", p.DataMB, p.OverheadPct)
		}
		if p.TurnaroundMS <= p.PureGPUMS {
			t.Errorf("%d MB: turnaround %.1f <= pure %.1f", p.DataMB, p.TurnaroundMS, p.PureGPUMS)
		}
	}
	if !strings.Contains(RenderFigure10(pts), "overhead") {
		t.Error("rendered Figure 10 missing header")
	}
}

func TestFigure9Shapes(t *testing.T) {
	series, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	va, ep := series[0], series[1]
	// I/O-intensive: no-virt grows much faster than virt.
	vaNoVirtGrowth := va.NoVirtMS[7] - va.NoVirtMS[0]
	vaVirtGrowth := va.VirtMS[7] - va.VirtMS[0]
	if vaNoVirtGrowth < 2*vaVirtGrowth {
		t.Errorf("vecadd: no-virt growth %.0fms vs virt %.0fms; paper shows a sharp no-virt rise",
			vaNoVirtGrowth, vaVirtGrowth)
	}
	// Compute-intensive: virt turnaround is flat (within 1%).
	if ep.VirtMS[7] > ep.VirtMS[0]*1.01 {
		t.Errorf("EP virt turnaround grew from %.0f to %.0f ms; paper shows it flat",
			ep.VirtMS[0], ep.VirtMS[7])
	}
	// Virtualization wins at every point.
	for _, s := range series {
		for i := range s.N {
			if s.VirtMS[i] >= s.NoVirtMS[i] {
				t.Errorf("%s N=%d: virt %.0f >= no-virt %.0f", s.Workload, s.N[i], s.VirtMS[i], s.NoVirtMS[i])
			}
		}
	}
	if !strings.Contains(RenderSeries("T", series), "speedup") {
		t.Error("rendered series missing speedup column")
	}
}

func TestTableIVCatalog(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	want := map[string]int{"MM": 4096, "MG": 64, "BlackScholes": 480, "CG": 8, "Electrostatics": 288}
	for _, r := range rows {
		if g, ok := want[r.Name]; !ok || r.GridSize != g {
			t.Errorf("%s: grid %d, want %d", r.Name, r.GridSize, g)
		}
		if r.CycleMS <= 0 {
			t.Errorf("%s: empty cycle", r.Name)
		}
	}
	if !strings.Contains(RenderTableIV(rows), "Problem Size") {
		t.Error("rendered Table IV missing header")
	}
}

func TestFigure16Band(t *testing.T) {
	rows, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]float64{}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		byName[r.Name] = r.Experimental
		lo = math.Min(lo, r.Experimental)
		hi = math.Max(hi, r.Experimental)
	}
	// Paper: "all five benchmarks achieved speedups from 1.4 to 4.1".
	if lo < 1.3 || hi > 4.5 {
		t.Errorf("speedups span [%.2f, %.2f], paper band is [1.4, 4.1]", lo, hi)
	}
	// Paper: "MG and CG achieve better performance gains".
	for _, other := range []string{"MM", "BlackScholes", "Electrostatics"} {
		if byName["MG"] <= byName[other] || byName["CG"] <= byName[other] {
			t.Errorf("MG (%.2f) and CG (%.2f) must beat %s (%.2f)",
				byName["MG"], byName["CG"], other, byName[other])
		}
	}
	if !strings.Contains(RenderFigure16(rows), "SPEEDUPS") {
		t.Error("rendered Figure 16 missing header")
	}
}

func TestFigures11to15Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweeps skipped in -short mode")
	}
	series, err := Figures11to15()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series, want 5", len(series))
	}
	for _, s := range series {
		// Virtualization wins at every process count, including N=1
		// (initialization elimination), as the paper reports.
		for i := range s.N {
			if s.VirtMS[i] >= s.NoVirtMS[i] {
				t.Errorf("%s N=%d: virt %.1f >= no-virt %.1f", s.Workload, s.N[i], s.VirtMS[i], s.NoVirtMS[i])
			}
		}
		// No-virt turnaround strictly grows with process count.
		for i := 1; i < len(s.N); i++ {
			if s.NoVirtMS[i] <= s.NoVirtMS[i-1] {
				t.Errorf("%s: no-virt not increasing at N=%d", s.Workload, s.N[i])
			}
		}
	}
}

func TestExtensionCluster(t *testing.T) {
	rows, err := ExtensionCluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	local, ib, ge := rows[0], rows[1], rows[2]
	if local.NetworkMS != 0 || local.RemoteProcs != 0 {
		t.Fatalf("local row has network activity: %+v", local)
	}
	if ib.TurnaroundMS <= local.TurnaroundMS {
		t.Fatalf("InfiniBand remote (%.1f) not slower than local (%.1f)", ib.TurnaroundMS, local.TurnaroundMS)
	}
	if ge.TurnaroundMS <= ib.TurnaroundMS {
		t.Fatalf("GigE (%.1f) not slower than InfiniBand (%.1f)", ge.TurnaroundMS, ib.TurnaroundMS)
	}
	if !strings.Contains(RenderExtensionCluster(rows), "REMOTE GPU ACCESS") {
		t.Fatal("render missing header")
	}
}

func TestExtensionMultiGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GPU sweep skipped in -short mode")
	}
	rows, err := ExtensionMultiGPU()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Scaling < 1.6 || rows[2].Scaling < 2.8 {
		t.Fatalf("scaling %.2f / %.2f, want ~1.9 / ~3.6 for a saturating workload",
			rows[1].Scaling, rows[2].Scaling)
	}
	if !strings.Contains(RenderExtensionMultiGPU(rows), "MULTI-GPU") {
		t.Fatal("render missing header")
	}
}

func TestExtensionNPBShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("NPB extension sweep skipped in -short mode")
	}
	series, err := ExtensionNPB()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Workload != "IS" || series[1].Workload != "FT" {
		t.Fatalf("series = %+v", series)
	}
	for _, s := range series {
		for i := range s.N {
			if s.VirtMS[i] >= s.NoVirtMS[i] {
				t.Errorf("%s N=%d: virt %.1f >= no-virt %.1f", s.Workload, s.N[i], s.VirtMS[i], s.NoVirtMS[i])
			}
		}
	}
}
