// Package gpuvirt reproduces "GPU Resource Sharing and Virtualization on
// High Performance Computing Systems" (Li, Narayana, El-Araby,
// El-Ghazawi; ICPP 2011) as a pure-Go system: a deterministic Fermi-class
// GPU simulator, the GPU Virtualization Manager (GVM) run-time that gives
// every SPMD process its own Virtual GPU over one shared device, the
// conventional direct-sharing baseline, the paper's analytical model, and
// the complete evaluation — every table and figure regenerates from the
// benchmarks in bench_test.go and the gvmbench command.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package gpuvirt
